//! The TCP layer: listener, two interchangeable connection cores,
//! graceful shutdown.
//!
//! Two I/O backends serve the same router behind the same semantics,
//! selected at runtime by [`ServerConfig::io`]:
//!
//! - **threads** (portable, any platform): one acceptor thread pushes
//!   accepted connections onto a bounded queue (overflow beyond
//!   [`MAX_PENDING_CONNECTIONS`] is answered `503` and closed, never
//!   buffered without limit); `workers` threads pop and drive
//!   connections through the incremental parser → router → response
//!   cycle. Keep-alive connections do not pin workers: after each
//!   response, if other connections are waiting, the connection is
//!   **requeued** behind them (unless it has pipelined bytes in
//!   flight), so N persistent clients round-robin with everyone else
//!   instead of starving the pool. Everything is `std` — threads,
//!   `Mutex` + `Condvar`, blocking sockets with read timeouts (the
//!   timeout doubles as the shutdown poll, so no connection can pin a
//!   worker forever).
//! - **epoll** (Linux, the default there): the edge-triggered readiness
//!   event loop in [`crate::reactor`] — non-blocking per-connection
//!   state machines sharded across reactor threads, with request
//!   execution handed to a compute pool so reactors never block. Same
//!   parser, same router, same timeout/shedding/drain semantics; only
//!   the scheduling of bytes differs.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is graceful by construction
//! under both cores: the flag flips, the acceptor is unblocked by a
//! wake-up connection and stops accepting, in-flight requests finish
//! (the response is forced `connection: close`), already-accepted idle
//! connections are drained or dropped, and only then do the threads
//! exit — no fully-received request is dropped.

use crate::http::{RequestParser, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::ProfileRegistry;
use crate::selfwatch::{SelfWatchConfig, SelfWatchState};
use crate::state::Durability;
use cc_monitor::MonitorSet;
use cc_obs::{Level, Logger};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which connection core drives the sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// Pick the best available backend: epoll on Linux (falling back to
    /// threads if the event loop cannot be set up), threads elsewhere.
    Auto,
    /// The portable blocking worker-pool core.
    Threads,
    /// The edge-triggered epoll readiness core (Linux only; startup
    /// fails elsewhere or when epoll is unavailable).
    Epoll,
}

impl IoMode {
    /// Parses the CLI spelling (`auto` | `threads` | `epoll`).
    pub fn parse(s: &str) -> Option<IoMode> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(IoMode::Auto),
            "threads" => Some(IoMode::Threads),
            "epoll" => Some(IoMode::Epoll),
            _ => None,
        }
    }
}

/// Where structured log lines are streamed (they are always ring-
/// buffered for `GET /v1/logs` regardless).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum LogSink {
    /// Ring buffer only — the embedding/test default: nothing written
    /// to the process streams.
    #[default]
    None,
    /// One JSON line per record to stderr (the CLI `serve` default).
    Stderr,
    /// One JSON line per record appended to a file (`--log-file`).
    File(PathBuf),
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address
    /// is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Compute threads. Under the threads core each drives one
    /// connection at a time; under the epoll core they form the compute
    /// pool that executes routed requests off the reactors.
    pub workers: usize,
    /// Connection core selection (see [`IoMode`]).
    pub io: IoMode,
    /// Reactor threads for the epoll core (`0` = one per available
    /// core, capped at 8). Ignored by the threads core.
    pub reactors: usize,
    /// Per-request body ceiling in bytes.
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection is held before closing.
    pub keep_alive: Duration,
    /// Durable-state directory. When set, boot restores the snapshot
    /// inside it (quarantining a corrupt file), `POST /v1/snapshot` and
    /// graceful shutdown write one, and `autosave` may write them
    /// periodically.
    pub state_dir: Option<PathBuf>,
    /// Periodic autosave interval (requires `state_dir`; `None` — the
    /// default — saves only on demand and at shutdown).
    pub autosave: Option<Duration>,
    /// Flight-recorder ring capacity per thread (`--trace-buffer`).
    /// `0` disables request tracing for this server: no spans, no trace
    /// id generation, and responses are byte-identical to a build without
    /// the recorder. The recorder itself is process-global; this knob
    /// gates whether *this server's* request path feeds it.
    pub trace_buffer: usize,
    /// Minimum structured-log level. [`Level::Off`] silences the logger
    /// entirely (ring included); request completions log at `debug`
    /// (2xx) / `warn` (4xx) / `error` (5xx), lifecycle lines at `info`.
    pub log_level: Level,
    /// Log ring capacity — the last N records answer `GET /v1/logs`.
    pub log_buffer: usize,
    /// Optional stream for log lines beyond the ring (see [`LogSink`]).
    pub log_sink: LogSink,
    /// Self-watch sampler: when set, a background thread folds the
    /// flight recorder, error counters, and gauges into one numeric row
    /// per tick and streams it into the reserved `__self` monitor so the
    /// server's own detectors watch the server (see [`crate::selfwatch`]).
    /// `None` (the embedding default) spawns nothing.
    pub self_watch: Option<SelfWatchConfig>,
    /// Fleet role (see [`crate::fleet`]): `Shard` arms monitors' export
    /// logs for delta export, `Coordinator` merges shard deltas instead
    /// of ingesting rows. `Standalone` (the default) does neither.
    pub role: crate::fleet::Role,
    /// Shard addresses (`host:port`) the coordinator's pull loop polls.
    /// Order matters: shard `s` owns epochs `g ≡ s (mod N)`.
    pub shard_addrs: Vec<String>,
    /// Coordinator poll cadence (`--pull-ms`).
    pub pull_interval: Duration,
    /// Export-log bound a shard arms its monitors with (`--export-cap`):
    /// how many closed windows are retained for lagging coordinators.
    pub export_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            io: IoMode::Auto,
            reactors: 0,
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
            keep_alive: Duration::from_secs(5),
            state_dir: None,
            autosave: None,
            trace_buffer: cc_trace::DEFAULT_BUFFER,
            log_level: Level::Info,
            log_buffer: cc_obs::DEFAULT_BUFFER,
            log_sink: LogSink::None,
            self_watch: None,
            role: crate::fleet::Role::Standalone,
            shard_addrs: Vec::new(),
            pull_interval: crate::fleet::DEFAULT_PULL_INTERVAL,
            export_cap: crate::fleet::DEFAULT_EXPORT_CAP,
        }
    }
}

/// State shared by the connection core's threads and the handle.
pub(crate) struct Shared {
    pub(crate) registry: ProfileRegistry,
    pub(crate) monitors: MonitorSet,
    pub(crate) metrics: Metrics,
    pub(crate) durability: Option<Durability>,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    /// Accepted connections awaiting a worker, with their enqueue
    /// instant — the dwell time becomes the first request's `queue_wait`
    /// trace phase.
    pub(crate) queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    pub(crate) work_ready: Condvar,
    /// The structured logger: ring-buffered for `GET /v1/logs`, with an
    /// optional stderr/file stream.
    pub(crate) logger: Logger,
    /// Self-watch sampler runtime state (ticks even when the sampler is
    /// disabled only in the trivial sense: everything stays zero).
    pub(crate) selfwatch: SelfWatchState,
    /// Fleet role + membership (standalone unless configured); the
    /// router's `/v2/fleet` branches and the pull loop both read it.
    pub(crate) fleet: crate::fleet::FleetState,
}

impl Shared {
    /// Whether this server's request path records trace spans.
    pub(crate) fn tracing(&self) -> bool {
        self.config.trace_buffer > 0 && cc_trace::enabled()
    }

    /// Logs one completed request, leveled by status class: `debug` for
    /// success (so the default `info` level pays one atomic load per
    /// request on the hot path), `warn` for client errors, `error` for
    /// server errors. The level check precedes the format so silenced
    /// lines cost no allocation.
    pub(crate) fn log_request(
        &self,
        trace: u64,
        endpoint: Endpoint,
        method: &str,
        path: &str,
        status: u16,
        elapsed: Duration,
    ) {
        let level = match status {
            s if s >= 500 => Level::Error,
            s if s >= 400 => Level::Warn,
            _ => Level::Debug,
        };
        if self.logger.enabled(level) {
            self.logger.log(
                level,
                trace,
                endpoint.label(),
                format!("{method} {path} -> {status} in {:.3}ms", elapsed.as_secs_f64() * 1e3),
            );
        }
    }
}

/// Per-request trace identity: the numeric span id plus the exact token
/// echoed back on the `x-ccsynth-trace` response header (the client's
/// own token when supplied, the generated id's hex otherwise).
pub(crate) struct TraceCtx {
    pub(crate) id: u64,
    pub(crate) echo: String,
}

/// Response header carrying the trace id.
pub(crate) const TRACE_HEADER: &str = "x-ccsynth-trace";

/// Resolves a request's trace identity: accept `X-Ccsynth-Trace` when
/// present (hex tokens round-trip exactly; other tokens are hashed for
/// span tagging but echoed verbatim), generate otherwise.
pub(crate) fn trace_ctx(req: &crate::http::Request) -> TraceCtx {
    match req.header(TRACE_HEADER).map(str::trim).filter(|v| !v.is_empty()) {
        Some(v) => {
            let mut echo = v.to_owned();
            echo.truncate(64);
            TraceCtx { id: cc_trace::parse_id(&echo), echo }
        }
        None => {
            let id = cc_trace::gen_id();
            TraceCtx { id, echo: cc_trace::id_hex(id) }
        }
    }
}

/// The threads belonging to whichever connection core is running.
enum Core {
    Threads {
        acceptor: std::thread::JoinHandle<()>,
        workers: Vec<std::thread::JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Epoll(crate::reactor::EpollCore),
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Self::shutdown`] for a graceful stop (tests and the CLI both
/// do).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    core: Core,
    autosaver: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
    puller: Option<std::thread::JoinHandle<()>>,
}

/// The server: bind + spawn. All state lives in the returned handle.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the acceptor + worker threads
    /// serving `registry`. With [`ServerConfig::state_dir`] set, the
    /// state snapshot is restored **before** the first connection is
    /// accepted (a corrupt snapshot is quarantined and logged, never
    /// fatal), and an autosave thread starts when
    /// [`ServerConfig::autosave`] is set.
    ///
    /// # Errors
    /// Fails when the address cannot be bound or the state directory
    /// cannot be created.
    pub fn start(config: ServerConfig, registry: ProfileRegistry) -> std::io::Result<ServerHandle> {
        let logger = Logger::new(config.log_level, config.log_buffer);
        match &config.log_sink {
            LogSink::None => {}
            LogSink::Stderr => logger.stream_to_stderr(),
            LogSink::File(path) => logger.stream_to_file(path)?,
        }
        // One trace id ties every boot-lifecycle log line together.
        let boot_trace = cc_trace::gen_id();
        let monitors = MonitorSet::new();
        let metrics = Metrics::new();
        let durability = match &config.state_dir {
            Some(dir) => Some(Durability::new(dir)?),
            None => None,
        };
        if let Some(d) = &durability {
            for note in d.boot(&registry, &monitors, &metrics) {
                logger.info(boot_trace, "", format!("cc_server state: {note}"));
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let autosave = config.autosave.filter(|_| durability.is_some());
        let self_watch = config.self_watch.clone();
        let role = config.role;
        let fleet = crate::fleet::FleetState::new(
            role,
            config.shard_addrs.clone(),
            config.export_cap,
            config.pull_interval,
        );
        if role == crate::fleet::Role::Shard {
            // Boot-restored monitors must export too — arm their logs
            // before the first connection can pull deltas.
            let cap = fleet.export_cap();
            for name in monitors.names() {
                if let Some(entry) = monitors.get(&name) {
                    entry.with_monitor(|m| m.set_export_cap(cap));
                }
            }
        }
        let shared = Arc::new(Shared {
            registry,
            monitors,
            metrics,
            durability,
            config,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            logger,
            selfwatch: SelfWatchState::new(),
            fleet,
        });
        let core = start_core(listener, &shared, workers)?;
        shared.logger.info(
            boot_trace,
            "",
            format!(
                "cc_server listening on http://{addr} (io {}, {workers} worker{})",
                shared.metrics.io_backend(),
                if workers == 1 { "" } else { "s" }
            ),
        );
        let autosaver = autosave.map(|interval| {
            let shared = shared.clone();
            std::thread::spawn(move || autosave_loop(&shared, interval))
        });
        let sampler = self_watch.map(|cfg| {
            shared.logger.info(
                boot_trace,
                "",
                format!(
                    "self-watch sampling every {:?} (warmup {}, window {}, patience {})",
                    cfg.interval, cfg.warmup, cfg.window, cfg.patience
                ),
            );
            let shared = shared.clone();
            std::thread::spawn(move || crate::selfwatch::sampler_loop(&shared))
        });
        let puller = (role == crate::fleet::Role::Coordinator && !shared.fleet.shards().is_empty())
            .then(|| {
                shared.logger.info(
                    boot_trace,
                    "",
                    format!(
                        "fleet coordinator polling {} shard(s) every {:?}",
                        shared.fleet.shard_count(),
                        shared.fleet.pull_interval()
                    ),
                );
                let shared = shared.clone();
                std::thread::spawn(move || crate::fleet::pull_loop(&shared.fleet, &shared.shutdown))
            });
        Ok(ServerHandle { addr, shared, core, autosaver, sampler, puller })
    }
}

/// Spawns the connection core requested by `config.io`.
fn start_core(
    listener: TcpListener,
    shared: &Arc<Shared>,
    workers: usize,
) -> std::io::Result<Core> {
    let start_threads = |listener: TcpListener| {
        shared.metrics.set_io_backend("threads");
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Core::Threads { acceptor, workers }
    };
    match shared.config.io {
        IoMode::Threads => Ok(start_threads(listener)),
        #[cfg(target_os = "linux")]
        IoMode::Epoll => {
            shared.metrics.set_io_backend("epoll");
            crate::reactor::EpollCore::start(listener, shared.clone(), workers).map(Core::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        IoMode::Epoll => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll backend is Linux-only; use --io threads",
        )),
        #[cfg(target_os = "linux")]
        IoMode::Auto => {
            // epoll can be unavailable under exotic sandboxes; Auto
            // promises a running server, so keep a duplicate of the
            // bound socket (same port) to fall back onto.
            let backup = listener.try_clone()?;
            shared.metrics.set_io_backend("epoll");
            match crate::reactor::EpollCore::start(listener, shared.clone(), workers) {
                Ok(core) => Ok(Core::Epoll(core)),
                Err(e) => {
                    shared.logger.warn(
                        0,
                        "",
                        format!("epoll unavailable ({e}); falling back to threads"),
                    );
                    Ok(start_threads(backup))
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        IoMode::Auto => Ok(start_threads(listener)),
    }
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The profile registry (e.g. to trigger reloads in-process).
    pub fn registry(&self) -> &ProfileRegistry {
        &self.shared.registry
    }

    /// The online-monitor registry (`/v1/ingest` streams land here).
    pub fn monitors(&self) -> &MonitorSet {
        &self.shared.monitors
    }

    /// The server metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The structured logger (ring + optional stream).
    pub fn logger(&self) -> &Logger {
        &self.shared.logger
    }

    /// Self-watch sampler state (all zeros when self-watch is off).
    pub fn self_watch(&self) -> &SelfWatchState {
        &self.shared.selfwatch
    }

    /// The fleet role/membership state (standalone unless configured).
    pub fn fleet(&self) -> &crate::fleet::FleetState {
        &self.shared.fleet
    }

    /// The connection core actually running (`"epoll"` or `"threads"`)
    /// — [`IoMode::Auto`] resolves when the server starts.
    pub fn io_backend(&self) -> &'static str {
        self.shared.metrics.io_backend()
    }

    /// Whether a state directory is configured (durable mode).
    pub fn durable(&self) -> bool {
        self.shared.durability.is_some()
    }

    /// Whether boot restored a state snapshot.
    pub fn restored(&self) -> bool {
        self.shared.durability.as_ref().is_some_and(Durability::restored)
    }

    /// Writes a state snapshot now (same as `POST /v1/snapshot`).
    ///
    /// # Errors
    /// `None` when no state directory is configured; otherwise the save
    /// result.
    pub fn save_state(&self) -> Option<Result<crate::state::SaveReport, cc_state::StateError>> {
        self.shared
            .durability
            .as_ref()
            .map(|d| d.save(&self.shared.registry, &self.shared.monitors, &self.shared.metrics))
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// drain queued connections, join every thread — then write a final
    /// state snapshot (durable mode), after the last request has
    /// settled, so the snapshot reflects everything the daemon served.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        #[cfg(target_os = "linux")]
        if let Core::Epoll(core) = &self.core {
            core.wake();
        }
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; harmless if the acceptor already exited. A
        // wildcard bind is not connectable on every platform — aim the
        // wake-up at loopback on the bound port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect(wake);
        match self.core {
            Core::Threads { acceptor, workers } => {
                let _ = acceptor.join();
                for w in workers {
                    let _ = w.join();
                }
            }
            #[cfg(target_os = "linux")]
            Core::Epoll(core) => core.join(),
        }
        if let Some(a) = self.autosaver {
            let _ = a.join();
        }
        if let Some(s) = self.sampler {
            let _ = s.join();
        }
        if let Some(p) = self.puller {
            let _ = p.join();
        }
        if let Some(d) = &self.shared.durability {
            match d.save(&self.shared.registry, &self.shared.monitors, &self.shared.metrics) {
                Ok(report) => self.shared.logger.info(
                    0,
                    "",
                    format!(
                        "cc_server state: saved {} ({} bytes, {} monitor{})",
                        report.path.display(),
                        report.bytes,
                        report.monitors,
                        if report.monitors == 1 { "" } else { "s" }
                    ),
                ),
                Err(e) => {
                    self.shared.logger.error(
                        0,
                        "",
                        format!("cc_server state: final snapshot failed: {e}"),
                    );
                }
            }
        }
    }
}

/// Cap on accepted-but-unserved connections. Beyond it the acceptor
/// answers `503` and closes instead of queueing without bound.
pub const MAX_PENDING_CONNECTIONS: usize = 1024;

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match accepted {
            Ok((mut stream, _)) => {
                shared.metrics.record_connection();
                shared.metrics.connection_opened();
                let mut queue = shared.queue.lock().expect("server lock never poisoned");
                if queue.len() >= MAX_PENDING_CONNECTIONS {
                    drop(queue);
                    // Shed load with an answer, not a silent hang.
                    let _ = stream
                        .write_all(&Response::error(503, "server is at capacity").serialize(false));
                    shared.metrics.record_request(Endpoint::Other, 503, 0.0);
                    shared.metrics.connection_closed();
                    shared.logger.warn(0, "", "accept queue full; connection shed with 503");
                    continue;
                }
                queue.push_back((stream, Instant::now()));
                shared.metrics.set_compute_queue_depth(queue.len());
                drop(queue);
                shared.work_ready.notify_one();
            }
            // Transient accept errors (EMFILE, aborted handshakes):
            // back off briefly instead of spinning.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("server lock never poisoned");
            loop {
                if let Some(s) = queue.pop_front() {
                    shared.metrics.set_compute_queue_depth(queue.len());
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .work_ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("server lock never poisoned");
                queue = q;
            }
        };
        match stream {
            Some((s, queued_at)) => serve_connection(s, queued_at, shared),
            None => return,
        }
    }
}

/// Periodic state saves. Sleeps in short ticks so shutdown is noticed
/// promptly; a failed save is logged and retried next interval (the
/// previous snapshot file stays intact — atomic replace).
fn autosave_loop(shared: &Shared, interval: Duration) {
    let tick = Duration::from_millis(100).min(interval);
    let mut last_save = Instant::now();
    loop {
        std::thread::sleep(tick);
        if shared.shutdown.load(Ordering::SeqCst) {
            // The final snapshot is shutdown's job (after workers quiesce).
            return;
        }
        if last_save.elapsed() < interval {
            continue;
        }
        if let Some(d) = &shared.durability {
            if let Err(e) = d.save(&shared.registry, &shared.monitors, &shared.metrics) {
                shared.logger.error(0, "", format!("cc_server state: autosave failed: {e}"));
            }
        }
        last_save = Instant::now();
    }
}

/// Read timeout on connection sockets — the cadence at which idle
/// connections notice shutdown and the keep-alive clock.
pub(crate) const READ_TICK: Duration = Duration::from_millis(200);

/// Ceiling on how long a response write may block on a client that has
/// stopped reading — past it, the connection is dropped so no worker is
/// pinned by a full send buffer.
pub(crate) const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Ceiling on how long one request may take to *arrive* in full. Bounds
/// the slow-trickle client (one byte per tick resets the idle clock but
/// not this one): past it, `408` and close.
pub(crate) const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// Routes one request with panic containment — a handler panic answers
/// `500` instead of killing the calling thread. Both connection cores
/// execute requests through here. `trace_id` tags any pipeline spans the
/// handler records (0 when tracing is off).
pub(crate) fn execute(
    req: &crate::http::Request,
    shared: &Shared,
    trace_id: u64,
) -> (Endpoint, Response) {
    catch_unwind(AssertUnwindSafe(|| {
        crate::api::route(
            req,
            &crate::api::RouteCtx {
                registry: &shared.registry,
                monitors: &shared.monitors,
                metrics: &shared.metrics,
                durability: shared.durability.as_ref(),
                logger: &shared.logger,
                self_watch: shared.config.self_watch.as_ref(),
                self_state: &shared.selfwatch,
                trace_buffer: shared.config.trace_buffer,
                fleet: &shared.fleet,
            },
            trace_id,
        )
    }))
    .unwrap_or_else(|_| (Endpoint::Other, Response::error(500, "handler panicked")))
}

/// Drives one connection: feed → parse → route → respond, until close /
/// idle timeout / request deadline / terminal parse error / shutdown.
/// `queued_at` is when the acceptor parked the connection — its dwell is
/// the first request's `queue_wait` phase (later keep-alive requests on
/// the same pickup report 0: they never waited in the accept queue).
fn serve_connection(stream: TcpStream, queued_at: Instant, shared: &Shared) {
    if drive_connection(stream, queued_at, shared) {
        shared.metrics.connection_closed();
    }
}

/// [`serve_connection`]'s body. Returns whether the connection is done
/// (`false` only on the keep-alive requeue path, where the stream moved
/// back into the accept queue and stays open).
fn drive_connection(mut stream: TcpStream, queued_at: Instant, shared: &Shared) -> bool {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let tracing = shared.tracing();
    let mut parser = RequestParser::new(shared.config.max_body_bytes);
    let mut read_buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    // Set while a request is partially buffered; enforces REQUEST_DEADLINE.
    let mut request_started: Option<Instant> = None;
    // Accept-queue dwell, attributed to the first request only.
    let mut queue_wait: Option<(Instant, Duration)> = Some((queued_at, queued_at.elapsed()));
    // Parser CPU time accumulated toward the next completed request.
    let mut parse_spent = Duration::ZERO;
    loop {
        // Drain every already-buffered request first (pipelining), then
        // read more.
        let parse_started = Instant::now();
        let parsed = parser.try_next();
        parse_spent += parse_started.elapsed();
        match parsed {
            Ok(Some(req)) => {
                request_started = None;
                let trace = tracing.then(|| trace_ctx(&req));
                let started = Instant::now();
                let shutting_down = shared.shutdown.load(Ordering::SeqCst);
                let trace_id = trace.as_ref().map_or(0, |t| t.id);
                let (endpoint, mut response) = execute(&req, shared, trace_id);
                let handle_dur = started.elapsed();
                if let Some(ctx) = &trace {
                    response.set_header(TRACE_HEADER, ctx.echo.clone());
                }
                let keep_alive = !req.close && !shutting_down;
                let payload = response.serialize(keep_alive);
                let write_started = Instant::now();
                let ok = stream.write_all(&payload).is_ok();
                shared.metrics.record_request(
                    endpoint,
                    response.status,
                    started.elapsed().as_secs_f64(),
                );
                shared.log_request(
                    trace_id,
                    endpoint,
                    &req.method,
                    &req.path,
                    response.status,
                    started.elapsed(),
                );
                if let Some(ctx) = &trace {
                    let tag = endpoint.label();
                    let (qw_start, qw_dur) = queue_wait.take().unwrap_or((started, Duration::ZERO));
                    cc_trace::record(
                        cc_trace::Phase::Parse,
                        ctx.id,
                        tag,
                        req.body.len() as u64,
                        parse_started,
                        parse_spent,
                    );
                    cc_trace::record(cc_trace::Phase::QueueWait, ctx.id, tag, 0, qw_start, qw_dur);
                    cc_trace::record(cc_trace::Phase::Handle, ctx.id, tag, 0, started, handle_dur);
                    cc_trace::record(
                        cc_trace::Phase::Write,
                        ctx.id,
                        tag,
                        payload.len() as u64,
                        write_started,
                        write_started.elapsed(),
                    );
                }
                parse_spent = Duration::ZERO;
                if !keep_alive || !ok {
                    return true;
                }
                // Fairness: a persistent keep-alive client must not pin
                // this worker while other connections wait. With no
                // pipelined bytes buffered, the connection can be parked
                // at the back of the queue and picked up fresh later.
                if parser.is_empty() {
                    let mut queue = shared.queue.lock().expect("server lock never poisoned");
                    if !queue.is_empty() {
                        queue.push_back((stream, Instant::now()));
                        shared.metrics.set_compute_queue_depth(queue.len());
                        drop(queue);
                        shared.work_ready.notify_one();
                        return false;
                    }
                }
                last_activity = Instant::now();
                continue;
            }
            Ok(None) => {
                // No complete request buffered. Shutdown drops the
                // connection here — only fully-received requests are
                // "in flight" — and a partially-received request is
                // held to REQUEST_DEADLINE regardless of how steadily
                // the client trickles bytes (each read resets the idle
                // clock, but never this one).
                if shared.shutdown.load(Ordering::SeqCst) {
                    return true;
                }
                match (&mut request_started, parser.is_empty()) {
                    (slot @ None, false) => *slot = Some(Instant::now()),
                    (Some(t), false) if t.elapsed() >= REQUEST_DEADLINE => {
                        let _ = stream.write_all(
                            &Response::error(408, "request took too long to arrive")
                                .serialize(false),
                        );
                        shared.metrics.record_request(Endpoint::Other, 408, 0.0);
                        shared.logger.warn(0, "", "request deadline exceeded; answered 408");
                        return true;
                    }
                    _ => {}
                }
            }
            Err(e) => {
                // Terminal framing error: report and close.
                let _ = stream.write_all(&Response::error(e.status(), e.reason()).serialize(false));
                shared.metrics.record_request(Endpoint::Other, e.status(), 0.0);
                shared.logger.warn(
                    0,
                    "",
                    format!("request rejected: {} ({})", e.reason(), e.status()),
                );
                return true;
            }
        }
        match stream.read(&mut read_buf) {
            // EOF: clean close between requests, abrupt disconnect
            // mid-request — either way the connection is done.
            Ok(0) => return true,
            Ok(n) => {
                parser.feed(&read_buf[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= shared.config.keep_alive {
                    return true;
                }
            }
            Err(_) => return true,
        }
    }
}
