//! Server metrics with a Prometheus text exposition (`GET /metrics`).
//!
//! Counters are plain atomics, bumped per request with relaxed ordering
//! (exactness across concurrent scrapes is not a requirement; never
//! losing increments is). Request latency lands in a
//! [`cc_stats::Histogram`] over `log₁₀(seconds)` — log-spaced buckets
//! span 10µs…10s with quarter-decade resolution, which equal-width bins
//! over seconds could not do — rendered as a standard cumulative
//! Prometheus histogram. The last bin is treated as the overflow bucket
//! (`+Inf` only), so a pathological 30s request is never reported under a
//! finite `le`.

use cc_stats::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The fixed endpoint set, used to label request counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /v1/profiles`
    Profiles,
    /// `POST /v1/check`
    Check,
    /// `POST /v1/explain`
    Explain,
    /// `POST /v1/drift`
    Drift,
    /// `POST /v1/reload`
    Reload,
    /// `POST /v1/ingest`
    Ingest,
    /// `GET /v1/monitor`
    Monitor,
    /// `POST /v1/snapshot`
    Snapshot,
    /// `GET /v1/trace`
    Trace,
    /// `GET /v1/logs`
    Logs,
    /// `GET /v1/self`
    SelfReport,
    /// `GET /metrics`
    Metrics,
    /// `GET`/`POST /v2/monitors/{name}/proposal`
    Proposal,
    /// `GET /v2/monitors/{name}/deltas` (shard export).
    Deltas,
    /// `GET /v2/fleet/shards` and `POST /v2/fleet/shards/{index}/deltas`.
    Fleet,
    /// Anything else (404s, parse failures, …).
    Other,
}

const ENDPOINTS: [Endpoint; 17] = [
    Endpoint::Healthz,
    Endpoint::Profiles,
    Endpoint::Check,
    Endpoint::Explain,
    Endpoint::Drift,
    Endpoint::Reload,
    Endpoint::Ingest,
    Endpoint::Monitor,
    Endpoint::Snapshot,
    Endpoint::Trace,
    Endpoint::Logs,
    Endpoint::SelfReport,
    Endpoint::Metrics,
    Endpoint::Proposal,
    Endpoint::Deltas,
    Endpoint::Fleet,
    Endpoint::Other,
];

impl Endpoint {
    /// The stable label used in metric series and trace span tags.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "/healthz",
            Endpoint::Profiles => "/v1/profiles",
            Endpoint::Check => "/v1/check",
            Endpoint::Explain => "/v1/explain",
            Endpoint::Drift => "/v1/drift",
            Endpoint::Reload => "/v1/reload",
            Endpoint::Ingest => "/v1/ingest",
            Endpoint::Monitor => "/v1/monitor",
            Endpoint::Snapshot => "/v1/snapshot",
            Endpoint::Trace => "/v1/trace",
            Endpoint::Logs => "/v1/logs",
            Endpoint::SelfReport => "/v1/self",
            Endpoint::Metrics => "/metrics",
            Endpoint::Proposal => "/v2/monitors/{name}/proposal",
            Endpoint::Deltas => "/v2/monitors/{name}/deltas",
            Endpoint::Fleet => "/v2/fleet",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        ENDPOINTS.iter().position(|e| *e == self).expect("endpoint in table")
    }
}

/// `log₁₀(seconds)` of the first latency bucket edge (10µs).
const LAT_LOG_LO: f64 = -5.0;
/// `log₁₀(seconds)` of the histogram ceiling (10s).
const LAT_LOG_HI: f64 = 1.0;
/// Latency bins: quarter-decade resolution across 6 decades.
const LAT_BINS: usize = 24;

/// Latency histogram plus the exact sum/count Prometheus expects.
struct Latency {
    hist: Histogram,
    sum_seconds: f64,
    count: u64,
}

/// One monitor's scrape-time series, collected from the monitor registry
/// by the caller of [`Metrics::render_prometheus`] (the metrics object
/// itself holds no monitor state — monitors own their counters).
#[derive(Clone, Debug)]
pub struct MonitorSeries {
    /// Monitor name (label value; escaped on render).
    pub name: String,
    /// Rows ingested over the monitor's lifetime.
    pub rows_ingested: u64,
    /// Windows closed over the monitor's lifetime.
    pub windows_closed: u64,
    /// Rows buffered past the most recent window close.
    pub window_lag: u64,
    /// Alarmed windows over the monitor's lifetime.
    pub alarms_total: u64,
    /// Resynthesis proposals over the monitor's lifetime.
    pub proposals_total: u64,
    /// Whether the monitor is currently alarming.
    pub alarm: bool,
}

/// All server metrics.
pub struct Metrics {
    started: Instant,
    /// `requests[endpoint][status class]`, classes `2xx / 4xx / 5xx`.
    requests: [[AtomicU64; 3]; ENDPOINTS.len()],
    rows_checked: AtomicU64,
    connections_accepted: AtomicU64,
    /// Which connection core is running: `0` threads, `1` epoll.
    io_backend: AtomicU64,
    /// Batch-bearing requests by body encoding: `[json, columnar]`.
    wire_requests: [AtomicU64; 2],
    /// `epoll_wait` returns (including timeout ticks) and the ready
    /// events they carried — their ratio is the reactor saturation
    /// gauge.
    reactor_wakes: AtomicU64,
    reactor_ready_events: AtomicU64,
    /// Connections currently registered with a connection core.
    open_connections: AtomicU64,
    /// Jobs parked in the compute queue (epoll core) or connections
    /// waiting for a worker (threads core).
    compute_queue_depth: AtomicU64,
    latency: Mutex<Latency>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics anchored at "now".
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            rows_checked: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            io_backend: AtomicU64::new(0),
            wire_requests: [AtomicU64::new(0), AtomicU64::new(0)],
            reactor_wakes: AtomicU64::new(0),
            reactor_ready_events: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            compute_queue_depth: AtomicU64::new(0),
            latency: Mutex::new(Latency {
                hist: Histogram::new(LAT_LOG_LO, LAT_LOG_HI, LAT_BINS),
                sum_seconds: 0.0,
                count: 0,
            }),
        }
    }

    /// Records one finished request.
    pub fn record_request(&self, endpoint: Endpoint, status: u16, seconds: f64) {
        let class = match status {
            200..=299 => 0,
            500..=599 => 2,
            _ => 1,
        };
        self.requests[endpoint.index()][class].fetch_add(1, Ordering::Relaxed);
        let mut lat = self.latency.lock().expect("metrics lock never poisoned");
        lat.hist.add(seconds.max(1e-9).log10());
        lat.sum_seconds += seconds;
        lat.count += 1;
    }

    /// Adds to the cumulative count of rows scored through `/v1/check` /
    /// `/v1/drift` / `/v1/explain`.
    pub fn add_rows_checked(&self, rows: usize) {
        self.rows_checked.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// The cumulative rows-checked counter (persisted by state
    /// snapshots).
    pub fn rows_checked(&self) -> u64 {
        self.rows_checked.load(Ordering::Relaxed)
    }

    /// Boot-time restore of the rows-checked counter from a state
    /// snapshot (runs before the listener accepts traffic, so a plain
    /// store cannot race live increments).
    pub fn restore_rows_checked(&self, rows: u64) {
        self.rows_checked.store(rows, Ordering::Relaxed);
    }

    /// Records one accepted connection.
    pub fn record_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records which connection core the server started with
    /// (`"threads"` or `"epoll"`); labels the per-backend request
    /// counter.
    pub fn set_io_backend(&self, backend: &str) {
        self.io_backend.store(u64::from(backend == "epoll"), Ordering::Relaxed);
    }

    /// The connection core recorded by [`Self::set_io_backend`].
    pub fn io_backend(&self) -> &'static str {
        if self.io_backend.load(Ordering::Relaxed) == 1 {
            "epoll"
        } else {
            "threads"
        }
    }

    /// Records one batch-bearing request (`/v1/check`-family or
    /// `/v1/ingest`) by body encoding.
    pub fn record_wire(&self, columnar: bool) {
        self.wire_requests[usize::from(columnar)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `epoll_wait` return carrying `ready` events (0 on a
    /// timeout tick). The exposition reports ready-events per wake — a
    /// saturation gauge for the reactor loops (≈0 idle, ≫1 means each
    /// wake is servicing many connections).
    pub fn record_reactor_wake(&self, ready: u64) {
        self.reactor_wakes.fetch_add(1, Ordering::Relaxed);
        self.reactor_ready_events.fetch_add(ready, Ordering::Relaxed);
    }

    /// Tracks one connection entering a connection core.
    pub fn connection_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Tracks one connection leaving a connection core.
    pub fn connection_closed(&self) {
        // Saturating: a spurious extra close must not wrap the gauge.
        let _ = self
            .open_connections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n.saturating_sub(1)));
    }

    /// Connections currently open (the `cc_server_open_connections` gauge).
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Publishes the instantaneous compute-queue depth.
    pub fn set_compute_queue_depth(&self, depth: usize) {
        self.compute_queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Last published compute-queue depth (the
    /// `cc_server_compute_queue_depth` gauge).
    pub fn compute_queue_depth(&self) -> u64 {
        self.compute_queue_depth.load(Ordering::Relaxed)
    }

    /// Lifetime request totals by status class `(2xx, 4xx, 5xx)` — the
    /// self-watch sampler differences successive reads to get
    /// per-interval error rates.
    pub fn request_class_totals(&self) -> (u64, u64, u64) {
        let mut classes = [0u64; 3];
        for by_class in &self.requests {
            for (slot, counter) in classes.iter_mut().zip(by_class) {
                *slot += counter.load(Ordering::Relaxed);
            }
        }
        (classes[0], classes[1], classes[2])
    }

    /// Seconds since this metrics object (i.e. the server) was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Renders the Prometheus text exposition. Registry-scoped series
    /// (profile count, generation, per-profile compile counts) are passed
    /// in by the caller, which owns the registry.
    pub fn render_prometheus(
        &self,
        profiles: usize,
        generation: u64,
        compile_counts: &[(String, u64)],
        monitors: &[MonitorSeries],
    ) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(
            "# HELP cc_server_requests_total Requests served, by endpoint and status class.\n",
        );
        out.push_str("# TYPE cc_server_requests_total counter\n");
        for e in ENDPOINTS {
            for (class, label) in ["2xx", "4xx", "5xx"].iter().enumerate() {
                let n = self.requests[e.index()][class].load(Ordering::Relaxed);
                if n > 0 {
                    out.push_str(&format!(
                        "cc_server_requests_total{{endpoint=\"{}\",code=\"{label}\"}} {n}\n",
                        e.label()
                    ));
                }
            }
        }
        {
            let lat = self.latency.lock().expect("metrics lock never poisoned");
            out.push_str("# HELP cc_server_request_duration_seconds Request latency.\n");
            out.push_str("# TYPE cc_server_request_duration_seconds histogram\n");
            let counts = lat.hist.counts();
            let width = (LAT_LOG_HI - LAT_LOG_LO) / LAT_BINS as f64;
            let mut cumulative = 0u64;
            // The final bin is the overflow bucket: everything at or past
            // the last finite edge reports only under `+Inf`.
            for (i, &c) in counts.iter().enumerate().take(LAT_BINS - 1) {
                cumulative += c;
                let le = 10f64.powf(LAT_LOG_LO + width * (i + 1) as f64);
                out.push_str(&format!(
                    "cc_server_request_duration_seconds_bucket{{le=\"{le:.6}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "cc_server_request_duration_seconds_bucket{{le=\"+Inf\"}} {}\n",
                lat.count
            ));
            out.push_str(&format!("cc_server_request_duration_seconds_sum {}\n", lat.sum_seconds));
            out.push_str(&format!("cc_server_request_duration_seconds_count {}\n", lat.count));
        }
        out.push_str(
            "# HELP cc_server_rows_checked_total Tuples scored through the serving endpoints.\n",
        );
        out.push_str("# TYPE cc_server_rows_checked_total counter\n");
        out.push_str(&format!(
            "cc_server_rows_checked_total {}\n",
            self.rows_checked.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP cc_server_connections_accepted_total TCP connections accepted.\n");
        out.push_str("# TYPE cc_server_connections_accepted_total counter\n");
        out.push_str(&format!(
            "cc_server_connections_accepted_total {}\n",
            self.connections_accepted.load(Ordering::Relaxed)
        ));
        let total_requests: u64 = self
            .requests
            .iter()
            .flat_map(|by_class| by_class.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        out.push_str("# HELP cc_server_io_requests_total Requests served, by connection core.\n");
        out.push_str("# TYPE cc_server_io_requests_total counter\n");
        out.push_str(&format!(
            "cc_server_io_requests_total{{io=\"{}\"}} {total_requests}\n",
            self.io_backend()
        ));
        out.push_str(
            "# HELP cc_server_wire_requests_total Batch-bearing requests, by body encoding.\n",
        );
        out.push_str("# TYPE cc_server_wire_requests_total counter\n");
        for (i, wire) in ["json", "columnar"].iter().enumerate() {
            out.push_str(&format!(
                "cc_server_wire_requests_total{{wire=\"{wire}\"}} {}\n",
                self.wire_requests[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP cc_server_open_connections Connections currently registered with a connection core.\n");
        out.push_str("# TYPE cc_server_open_connections gauge\n");
        out.push_str(&format!(
            "cc_server_open_connections {}\n",
            self.open_connections.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP cc_server_compute_queue_depth Jobs waiting for a compute worker.\n");
        out.push_str("# TYPE cc_server_compute_queue_depth gauge\n");
        out.push_str(&format!(
            "cc_server_compute_queue_depth {}\n",
            self.compute_queue_depth.load(Ordering::Relaxed)
        ));
        let wakes = self.reactor_wakes.load(Ordering::Relaxed);
        if wakes > 0 {
            out.push_str(
                "# HELP cc_server_reactor_ready_per_wake Ready events per epoll wake (saturation).\n",
            );
            out.push_str("# TYPE cc_server_reactor_ready_per_wake gauge\n");
            out.push_str(&format!(
                "cc_server_reactor_ready_per_wake {:.4}\n",
                self.reactor_ready_events.load(Ordering::Relaxed) as f64 / wakes as f64
            ));
        }
        render_phase_family(
            &mut out,
            "cc_server_phase_seconds",
            "Request lifecycle time by phase (flight-recorder aggregates).",
            &cc_trace::Phase::SERVER,
        );
        render_phase_family(
            &mut out,
            "cc_monitor_phase_seconds",
            "Ingest pipeline time by phase (flight-recorder aggregates).",
            &cc_trace::Phase::MONITOR,
        );
        out.push_str("# HELP cc_server_build_info Build metadata (constant 1).\n");
        out.push_str("# TYPE cc_server_build_info gauge\n");
        out.push_str(&format!(
            "cc_server_build_info{{version=\"{}\",git=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            option_env!("CCSYNTH_GIT_SHA").unwrap_or("unknown"),
        ));
        out.push_str("# HELP cc_server_profile_compiles_total Plan compilations per profile, across all (re)loads.\n");
        out.push_str("# TYPE cc_server_profile_compiles_total counter\n");
        for (name, n) in compile_counts {
            out.push_str(&format!(
                "cc_server_profile_compiles_total{{profile=\"{}\"}} {n}\n",
                escape_label(name)
            ));
        }
        out.push_str("# HELP cc_server_monitors Online monitors registered.\n");
        out.push_str("# TYPE cc_server_monitors gauge\n");
        out.push_str(&format!("cc_server_monitors {}\n", monitors.len()));
        if !monitors.is_empty() {
            type SeriesSpec = (&'static str, &'static str, fn(&MonitorSeries) -> u64);
            let series: [SeriesSpec; 6] = [
                ("cc_server_monitor_rows_ingested_total", "counter", |m| m.rows_ingested),
                ("cc_server_monitor_windows_closed_total", "counter", |m| m.windows_closed),
                ("cc_server_monitor_alarms_total", "counter", |m| m.alarms_total),
                ("cc_server_monitor_resynth_proposals_total", "counter", |m| m.proposals_total),
                ("cc_server_monitor_window_lag_rows", "gauge", |m| m.window_lag),
                ("cc_server_monitor_alarm", "gauge", |m| u64::from(m.alarm)),
            ];
            for (metric, kind, value) in series {
                out.push_str(&format!("# TYPE {metric} {kind}\n"));
                for m in monitors {
                    out.push_str(&format!(
                        "{metric}{{monitor=\"{}\"}} {}\n",
                        escape_label(&m.name),
                        value(m)
                    ));
                }
            }
        }
        if let Some(own) = monitors.iter().find(|m| m.name == crate::selfwatch::SELF_MONITOR) {
            out.push_str(
                "# HELP cc_server_self_alarm Self-watch meta-monitor alarm state (1 = degraded).\n",
            );
            out.push_str("# TYPE cc_server_self_alarm gauge\n");
            out.push_str(&format!("cc_server_self_alarm {}\n", u64::from(own.alarm)));
            out.push_str(
                "# HELP cc_server_self_alarms_total Self-watch alarmed windows, lifetime.\n",
            );
            out.push_str("# TYPE cc_server_self_alarms_total counter\n");
            out.push_str(&format!("cc_server_self_alarms_total {}\n", own.alarms_total));
        }
        out.push_str("# HELP cc_server_profiles Profiles in the published registry snapshot.\n");
        out.push_str("# TYPE cc_server_profiles gauge\n");
        out.push_str(&format!("cc_server_profiles {profiles}\n"));
        out.push_str("# HELP cc_server_registry_generation Registry reload generation.\n");
        out.push_str("# TYPE cc_server_registry_generation gauge\n");
        out.push_str(&format!("cc_server_registry_generation {generation}\n"));
        out.push_str("# HELP cc_server_uptime_seconds Time since server start.\n");
        out.push_str("# TYPE cc_server_uptime_seconds gauge\n");
        out.push_str(&format!(
            "cc_server_uptime_seconds {:.3}\n",
            self.started.elapsed().as_secs_f64()
        ));
        out
    }
}

/// Renders one phase-labelled histogram family from the flight
/// recorder's cumulative per-phase aggregates. These are process-global
/// (the recorder is), deterministic, and mergeable across scrapes.
fn render_phase_family(out: &mut String, metric: &str, help: &str, phases: &[cc_trace::Phase]) {
    out.push_str(&format!("# HELP {metric} {help}\n"));
    out.push_str(&format!("# TYPE {metric} histogram\n"));
    for &phase in phases {
        let total = cc_trace::phase_total(phase);
        let label = phase.name();
        let mut cumulative = 0u64;
        for (i, &edge_us) in cc_trace::BUCKET_EDGES_US.iter().enumerate() {
            cumulative += total.buckets[i];
            out.push_str(&format!(
                "{metric}_bucket{{phase=\"{label}\",le=\"{:.6}\"}} {cumulative}\n",
                edge_us as f64 / 1e6
            ));
        }
        out.push_str(&format!(
            "{metric}_bucket{{phase=\"{label}\",le=\"+Inf\"}} {}\n",
            total.count
        ));
        out.push_str(&format!(
            "{metric}_sum{{phase=\"{label}\"}} {:.6}\n",
            total.sum_us as f64 / 1e6
        ));
        out.push_str(&format!("{metric}_count{{phase=\"{label}\"}} {}\n", total.count));
    }
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`). Profile names come from arbitrary file stems; one unescaped
/// quote would invalidate the entire exposition and lose every metric.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_escaped() {
        let m = Metrics::new();
        let text = m.render_prometheus(1, 1, &[("we\"ird\\name\n".into(), 1)], &[]);
        assert!(
            text.contains("cc_server_profile_compiles_total{profile=\"we\\\"ird\\\\name\\n\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn exposition_shape() {
        let m = Metrics::new();
        m.record_request(Endpoint::Check, 200, 0.004);
        m.record_request(Endpoint::Check, 404, 0.0001);
        m.record_request(Endpoint::Metrics, 200, 30.0); // overflow bucket
        m.add_rows_checked(1234);
        m.record_connection();
        let text = m.render_prometheus(2, 3, &[("alpha".into(), 2)], &[]);
        assert!(text.contains("cc_server_requests_total{endpoint=\"/v1/check\",code=\"2xx\"} 1"));
        assert!(text.contains("cc_server_requests_total{endpoint=\"/v1/check\",code=\"4xx\"} 1"));
        assert!(text.contains("cc_server_rows_checked_total 1234"));
        assert!(text.contains("cc_server_connections_accepted_total 1"));
        assert!(text.contains("cc_server_profile_compiles_total{profile=\"alpha\"} 2"));
        assert!(text.contains("cc_server_profiles 2"));
        assert!(text.contains("cc_server_registry_generation 3"));
        assert!(text.contains("cc_server_request_duration_seconds_count 3"));
        assert!(text.contains("cc_server_request_duration_seconds_bucket{le=\"+Inf\"} 3"));
        // Cumulative buckets are monotone and the 30s outlier only shows
        // under +Inf: the largest finite bucket holds 2.
        let last_finite = text
            .lines()
            .rfind(|l| l.starts_with("cc_server_request_duration_seconds_bucket{le=\"1"))
            .unwrap();
        assert!(last_finite.ends_with(" 2"), "{last_finite}");
    }

    #[test]
    fn io_wire_and_reactor_series() {
        let m = Metrics::new();
        m.record_request(Endpoint::Check, 200, 0.001);
        m.record_wire(false);
        m.record_wire(true);
        m.record_wire(true);
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("cc_server_io_requests_total{io=\"threads\"} 1"), "{text}");
        // No epoll wakes recorded: the saturation gauge stays absent.
        assert!(!text.contains("cc_server_reactor_ready_per_wake"));
        m.set_io_backend("epoll");
        m.record_reactor_wake(0);
        m.record_reactor_wake(4);
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("cc_server_io_requests_total{io=\"epoll\"} 1"), "{text}");
        assert!(text.contains("cc_server_wire_requests_total{wire=\"json\"} 1"));
        assert!(text.contains("cc_server_wire_requests_total{wire=\"columnar\"} 2"));
        assert!(text.contains("cc_server_reactor_ready_per_wake 2.0000"), "{text}");
    }

    #[test]
    fn build_info_and_phase_families_present() {
        let m = Metrics::new();
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("# TYPE cc_server_build_info gauge"));
        assert!(text.contains("cc_server_build_info{version=\""), "{text}");
        assert!(text.contains("# TYPE cc_server_phase_seconds histogram"));
        assert!(text.contains("# TYPE cc_monitor_phase_seconds histogram"));
        for phase in ["parse", "queue_wait", "handle", "write"] {
            assert!(
                text.contains(&format!("cc_server_phase_seconds_count{{phase=\"{phase}\"}}")),
                "{text}"
            );
            assert!(text.contains(&format!(
                "cc_server_phase_seconds_bucket{{phase=\"{phase}\",le=\"+Inf\"}}"
            )));
        }
        for phase in ["score", "admission_wait", "turn_wait", "commit"] {
            assert!(
                text.contains(&format!("cc_monitor_phase_seconds_count{{phase=\"{phase}\"}}")),
                "{text}"
            );
        }
        // Bucket edges render in seconds with fixed precision.
        assert!(text.contains("le=\"0.000010\""), "{text}");
        assert!(text.contains("le=\"10.000000\""), "{text}");
    }

    #[test]
    fn connection_and_queue_gauges() {
        let m = Metrics::new();
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("cc_server_open_connections 0"), "{text}");
        assert!(text.contains("cc_server_compute_queue_depth 0"), "{text}");
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.set_compute_queue_depth(5);
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("cc_server_open_connections 1"), "{text}");
        assert!(text.contains("cc_server_compute_queue_depth 5"), "{text}");
        // Saturating close: never wraps below zero.
        m.connection_closed();
        m.connection_closed();
        assert_eq!(m.open_connections(), 0);
    }

    #[test]
    fn self_alarm_gauge_requires_self_monitor() {
        let m = Metrics::new();
        let user = MonitorSeries {
            name: "flights".into(),
            rows_ingested: 1,
            windows_closed: 1,
            window_lag: 0,
            alarms_total: 2,
            proposals_total: 0,
            alarm: true,
        };
        let text = m.render_prometheus(0, 0, &[], std::slice::from_ref(&user));
        assert!(!text.contains("cc_server_self_alarm"), "{text}");
        let own = MonitorSeries { name: crate::selfwatch::SELF_MONITOR.into(), ..user };
        let text = m.render_prometheus(0, 0, &[], &[own]);
        assert!(text.contains("cc_server_self_alarm 1"), "{text}");
        assert!(text.contains("cc_server_self_alarms_total 2"), "{text}");
    }

    #[test]
    fn request_class_totals_sum_across_endpoints() {
        let m = Metrics::new();
        m.record_request(Endpoint::Check, 200, 0.001);
        m.record_request(Endpoint::Logs, 200, 0.001);
        m.record_request(Endpoint::SelfReport, 404, 0.001);
        m.record_request(Endpoint::Ingest, 500, 0.001);
        assert_eq!(m.request_class_totals(), (2, 1, 1));
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("cc_server_requests_total{endpoint=\"/v1/logs\",code=\"2xx\"} 1"));
        assert!(text.contains("cc_server_requests_total{endpoint=\"/v1/self\",code=\"4xx\"} 1"));
    }

    #[test]
    fn status_classes() {
        let m = Metrics::new();
        for status in [200, 204, 400, 404, 431, 500, 503] {
            m.record_request(Endpoint::Other, status, 0.001);
        }
        let text = m.render_prometheus(0, 0, &[], &[]);
        assert!(text.contains("endpoint=\"other\",code=\"2xx\"} 2"));
        assert!(text.contains("endpoint=\"other\",code=\"4xx\"} 3"));
        assert!(text.contains("endpoint=\"other\",code=\"5xx\"} 2"));
    }
}
