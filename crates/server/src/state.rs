//! Daemon durability: collecting, saving, and restoring [`ServerState`].
//!
//! When the daemon is started with a state directory, [`Durability`]
//! owns the snapshot file inside it and the boot/save choreography:
//!
//! * **boot** ([`Durability::boot`]) — `cc_state::load_or_quarantine`:
//!   a verified snapshot repopulates the monitor registry (each
//!   [`cc_monitor::MonitorState`] rebuilt bit-exactly, serving plans
//!   recompiled), fast-forwards the profile-registry generation, and
//!   restores the cumulative row counter; a corrupt file is quarantined
//!   to `*.corrupt` and the daemon boots fresh with a warning — never a
//!   crash loop;
//! * **save** ([`Durability::save`]) — collect a consistent image (each
//!   monitor locked briefly, one at a time) and write it atomically
//!   (temp file + fsync + rename, see [`cc_state::write_snapshot`]).
//!   Saves are triggered by the autosave timer, by `POST /v1/snapshot`,
//!   and by graceful shutdown.

use crate::metrics::Metrics;
use crate::registry::ProfileRegistry;
use cc_monitor::{MonitorSet, OnlineMonitor};
use cc_state::{LoadOutcome, MonitorEntry, ServerState, StateError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Snapshot file name inside the state directory.
pub const STATE_FILE: &str = "cc_state.json";

/// What one save wrote.
#[derive(Clone, Debug)]
pub struct SaveReport {
    /// Snapshot file path.
    pub path: PathBuf,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Monitors persisted.
    pub monitors: usize,
    /// Registry generation persisted.
    pub generation: u64,
}

/// The daemon's durability handle (present only under `--state-dir`).
#[derive(Debug)]
pub struct Durability {
    path: PathBuf,
    restored: AtomicBool,
    /// Serializes [`Self::save`] end to end (collect → write). Without
    /// it, an autosave that collected its image *before* a concurrent
    /// `POST /v1/snapshot` collected a newer one could rename its stale
    /// image over the fresh file after the endpoint already reported
    /// success — atomic replace guarantees integrity, not freshness.
    save_serial: std::sync::Mutex<()>,
}

impl Durability {
    /// A handle writing `STATE_FILE` inside `dir` (the directory is
    /// created if absent).
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn new(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Durability {
            path: dir.join(STATE_FILE),
            restored: AtomicBool::new(false),
            save_serial: std::sync::Mutex::new(()),
        })
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether boot restored a snapshot (the `/healthz` `restored`
    /// field).
    pub fn restored(&self) -> bool {
        self.restored.load(Ordering::Relaxed)
    }

    /// Boot-time restore. Returns human-readable notes (quarantine
    /// warnings, per-monitor restore failures) for the caller to log;
    /// never fails the boot.
    pub fn boot(
        &self,
        registry: &ProfileRegistry,
        monitors: &MonitorSet,
        metrics: &Metrics,
    ) -> Vec<String> {
        let mut notes = Vec::new();
        match cc_state::load_or_quarantine::<ServerState>(&self.path) {
            LoadOutcome::Restored(state) => {
                let mut restored = 0usize;
                for entry in state.monitors {
                    match OnlineMonitor::from_state(entry.state) {
                        Ok(m) => {
                            monitors.insert(&entry.name, m);
                            restored += 1;
                        }
                        Err(e) => notes.push(format!(
                            "monitor '{}' in the snapshot could not be restored ({e}); dropped",
                            entry.name
                        )),
                    }
                }
                registry.restore_generation(state.registry_generation);
                metrics.restore_rows_checked(state.rows_checked);
                self.restored.store(true, Ordering::Relaxed);
                notes.push(format!(
                    "restored state from {} ({restored} monitor{}, generation {})",
                    self.path.display(),
                    if restored == 1 { "" } else { "s" },
                    state.registry_generation
                ));
            }
            LoadOutcome::Fresh(Some(warning)) => notes.push(warning),
            LoadOutcome::Fresh(None) => {}
        }
        notes
    }

    /// Collects the current state and writes it atomically.
    ///
    /// # Errors
    /// Propagates snapshot write failures (the previous snapshot file,
    /// if any, is left intact).
    pub fn save(
        &self,
        registry: &ProfileRegistry,
        monitors: &MonitorSet,
        metrics: &Metrics,
    ) -> Result<SaveReport, StateError> {
        // Collect-then-write as one critical section so concurrent
        // savers (autosave timer vs /v1/snapshot vs shutdown) can never
        // publish an older image over a newer one. Poison recovery: a
        // panicked save wrote nothing (the write is atomic), so the
        // next save is safe.
        let _serial = self.save_serial.lock().unwrap_or_else(|p| p.into_inner());
        let state = collect(registry, monitors, metrics);
        let generation = state.registry_generation;
        let n = state.monitors.len();
        let bytes = cc_state::write_snapshot(&self.path, &state)?;
        Ok(SaveReport { path: self.path.clone(), bytes, monitors: n, generation })
    }
}

/// Assembles the daemon's persistable state: registry generation, the
/// rows-checked counter, and every monitor's state image (each monitor
/// locked briefly, one at a time — ingest on other monitors is never
/// blocked).
pub fn collect(
    registry: &ProfileRegistry,
    monitors: &MonitorSet,
    metrics: &Metrics,
) -> ServerState {
    ServerState {
        registry_generation: registry.snapshot().generation(),
        rows_checked: metrics.rows_checked(),
        monitors: monitors
            .states()
            .into_iter()
            .map(|(name, state)| MonitorEntry { name, state })
            .collect(),
    }
}
