//! Self-watch: the daemon monitors itself with its own detectors.
//!
//! The paper's thesis — conformance constraints quantify trust in a
//! data-driven system — applies to this very server. A background
//! sampler folds the flight recorder's per-phase latency cells, the
//! request error counters, the connection/queue gauges, and rows/s into
//! one numeric row per tick and streams those rows into an ordinary
//! [`OnlineMonitor`] registered under the reserved name [`SELF_MONITOR`]:
//!
//! 1. **Warmup** — the first [`SelfWatchConfig::warmup`] samples are
//!    buffered, then a conformance profile is synthesized from them (the
//!    same PCA synthesis user data gets). A degenerate warmup (synthesis
//!    failure) is retried on subsequent ticks with a growing buffer.
//! 2. **Calibration** — the monitor self-calibrates its drift detector
//!    over the first `calibration_windows` window closes, exactly like a
//!    user stream; `/v1/self` reports `calibrated` flipping true.
//! 3. **Watch** — sustained latency drift or error-rate shifts raise the
//!    ordinary alarm machinery, surfaced as the `cc_server_self_alarm`
//!    gauge, the `degraded` field in `/healthz`, and `GET /v1/self`.
//!
//! The `__self` monitor lives in the shared [`cc_monitor::MonitorSet`],
//! so state snapshots persist and restore it like any user monitor; the
//! reserved `__` prefix (rejected for external `/v1/ingest` names) keeps
//! clients out of the namespace.

use crate::metrics::Metrics;
use crate::server::Shared;
use cc_frame::DataFrame;
use cc_monitor::{MonitorConfig, MonitorError, OnlineMonitor, WindowSpec};
use cc_trace::{Phase, PhaseTotal};
use conformance::{synthesize, SynthOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Reserved registry name of the meta-monitor watching this server.
pub const SELF_MONITOR: &str = "__self";

/// Feature columns of the self-watch stream, in sample order.
pub const SELF_FEATURES: [&str; 9] = [
    "tick_ms",
    "parse_ms",
    "queue_ms",
    "handle_ms",
    "write_ms",
    "error_ratio",
    "rows_per_sec",
    "open_conns",
    "queue_depth",
];

/// Sampler tuning. Defaults favour a long-running daemon: 1s cadence,
/// ~16s of warmup, tumbling 8-sample windows, two calibration windows,
/// three consecutive alarmed windows before the detector latches.
#[derive(Clone, Debug)]
pub struct SelfWatchConfig {
    /// Sampling cadence.
    pub interval: Duration,
    /// Samples buffered before the self-profile is synthesized.
    pub warmup: usize,
    /// Samples per detector window (tumbling).
    pub window: usize,
    /// Windows used to self-calibrate the drift detector.
    pub calibration_windows: usize,
    /// Consecutive alarmed windows before the alarm latches.
    pub patience: usize,
}

impl Default for SelfWatchConfig {
    fn default() -> Self {
        SelfWatchConfig {
            interval: Duration::from_secs(1),
            warmup: 16,
            window: 8,
            calibration_windows: 2,
            patience: 3,
        }
    }
}

/// Sampler runtime state, surfaced by `GET /v1/self`.
pub struct SelfWatchState {
    /// Samples folded since boot.
    pub(crate) ticks: AtomicU64,
    /// Failed self-profile synthesis attempts (degenerate warmup data).
    pub(crate) synth_errors: AtomicU64,
    /// Failed self-sample ingests.
    pub(crate) ingest_errors: AtomicU64,
    /// The most recent sample, in [`SELF_FEATURES`] order.
    pub(crate) last_sample: Mutex<Option<Vec<f64>>>,
}

impl SelfWatchState {
    pub(crate) fn new() -> Self {
        SelfWatchState {
            ticks: AtomicU64::new(0),
            synth_errors: AtomicU64::new(0),
            ingest_errors: AtomicU64::new(0),
            last_sample: Mutex::new(None),
        }
    }

    /// Samples folded since boot.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Failed self-profile synthesis attempts.
    pub fn synth_errors(&self) -> u64 {
        self.synth_errors.load(Ordering::Relaxed)
    }

    /// Failed self-sample ingests.
    pub fn ingest_errors(&self) -> u64 {
        self.ingest_errors.load(Ordering::Relaxed)
    }

    /// The most recent sample, in [`SELF_FEATURES`] order.
    pub fn last_sample(&self) -> Option<Vec<f64>> {
        self.last_sample.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// One read of every cumulative counter the sampler differences.
struct Counters {
    at: Instant,
    phases: Vec<PhaseTotal>,
    /// Request totals by status class `(2xx, 4xx, 5xx)`.
    classes: (u64, u64, u64),
    rows_checked: u64,
}

fn read_counters(metrics: &Metrics) -> Counters {
    Counters {
        at: Instant::now(),
        phases: cc_trace::phase_totals(),
        classes: metrics.request_class_totals(),
        rows_checked: metrics.rows_checked(),
    }
}

fn phase_mean_ms(deltas: &[PhaseTotal], phase: Phase) -> f64 {
    deltas.iter().find(|t| t.phase == phase).map_or(0.0, |t| t.mean_us() / 1000.0)
}

/// Folds the interval between two counter reads into one feature row,
/// in [`SELF_FEATURES`] order.
fn fold_sample(now: &Counters, prev: &Counters, metrics: &Metrics) -> Vec<f64> {
    let dt = now.at.duration_since(prev.at).as_secs_f64().max(1e-9);
    let deltas = cc_trace::phase_deltas(&now.phases, &prev.phases);
    let (d2, d4, d5) = (
        now.classes.0.saturating_sub(prev.classes.0),
        now.classes.1.saturating_sub(prev.classes.1),
        now.classes.2.saturating_sub(prev.classes.2),
    );
    let total = d2 + d4 + d5;
    let error_ratio = if total == 0 { 0.0 } else { (d4 + d5) as f64 / total as f64 };
    let rows = now.rows_checked.saturating_sub(prev.rows_checked);
    vec![
        dt * 1000.0,
        phase_mean_ms(&deltas, Phase::Parse),
        phase_mean_ms(&deltas, Phase::QueueWait),
        phase_mean_ms(&deltas, Phase::Handle),
        phase_mean_ms(&deltas, Phase::Write),
        error_ratio,
        rows as f64 / dt,
        metrics.open_connections() as f64,
        metrics.compute_queue_depth() as f64,
    ]
}

/// Builds a one-row ingest batch from a sample.
fn sample_frame(sample: &[f64]) -> DataFrame {
    let mut df = DataFrame::new();
    for (name, &v) in SELF_FEATURES.iter().copied().zip(sample) {
        df.push_numeric(name, vec![v]).expect("fresh frame accepts distinct columns");
    }
    df
}

/// Synthesizes the self-profile from buffered warmup samples and wraps
/// it in a monitor configured per `cfg`.
fn build_self_monitor(
    warmup: &[Vec<f64>],
    cfg: &SelfWatchConfig,
) -> Result<OnlineMonitor, MonitorError> {
    let mut df = DataFrame::new();
    for (j, name) in SELF_FEATURES.iter().copied().enumerate() {
        let column: Vec<f64> = warmup.iter().map(|row| row[j]).collect();
        df.push_numeric(name, column).expect("fresh frame accepts distinct columns");
    }
    let profile = synthesize(&df, &SynthOptions::default())
        .map_err(|e| MonitorError::Config(format!("self-profile synthesis: {e}")))?;
    let mc = MonitorConfig {
        spec: WindowSpec::new(cfg.window.max(1), cfg.window.max(1))?,
        calibration_windows: cfg.calibration_windows.max(2),
        patience: cfg.patience.max(1),
        // The self-stream's job is alarming, not adapting: auto-resynthesis
        // would re-learn a degraded baseline as the new normal.
        auto_resynth: false,
        ..MonitorConfig::default()
    };
    OnlineMonitor::new(profile, mc)
}

/// The sampler thread body: ticks until shutdown, building the warmup
/// buffer, synthesizing the self-profile, then streaming one sample per
/// tick into the `__self` monitor.
pub(crate) fn sampler_loop(shared: &Shared) {
    let Some(cfg) = shared.config.self_watch.clone() else {
        return;
    };
    let logger = &shared.logger;
    let interval = cfg.interval.max(Duration::from_millis(1));
    let nap = interval.min(Duration::from_millis(50));
    let mut prev = read_counters(&shared.metrics);
    let mut warmup: Vec<Vec<f64>> = Vec::new();
    let mut was_alarm =
        shared.monitors.get(SELF_MONITOR).map(|e| e.status().alarm).unwrap_or(false);
    let mut next_tick = Instant::now() + interval;
    loop {
        while Instant::now() < next_tick {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(nap);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        next_tick += interval;
        let now = read_counters(&shared.metrics);
        let sample = fold_sample(&now, &prev, &shared.metrics);
        prev = now;
        shared.selfwatch.ticks.fetch_add(1, Ordering::Relaxed);
        *shared.selfwatch.last_sample.lock().unwrap_or_else(|p| p.into_inner()) =
            Some(sample.clone());

        // A restored snapshot may already hold `__self`; warmup is then
        // skipped and sampling resumes against the restored baseline.
        match shared.monitors.get(SELF_MONITOR) {
            Some(entry) => match entry.ingest(&sample_frame(&sample), 1) {
                Ok((_, status)) => {
                    if status.alarm && !was_alarm {
                        logger.warn(
                                0,
                                "",
                                format!(
                                    "self-watch alarm raised (drift {:.4}, baseline {:.4}±{:.4}, {} alarmed windows)",
                                    status.last_drift,
                                    status.baseline_mean,
                                    status.baseline_std,
                                    status.alarms_total
                                ),
                            );
                    } else if !status.alarm && was_alarm {
                        logger.info(0, "", "self-watch alarm cleared");
                    }
                    was_alarm = status.alarm;
                }
                Err(e) => {
                    shared.selfwatch.ingest_errors.fetch_add(1, Ordering::Relaxed);
                    logger.warn(0, "", format!("self-watch sample rejected: {e}"));
                }
            },
            None => {
                warmup.push(sample);
                if warmup.len() >= cfg.warmup.max(2) {
                    match build_self_monitor(&warmup, &cfg) {
                        Ok(monitor) => {
                            shared.monitors.insert(SELF_MONITOR, monitor);
                            logger.info(
                                0,
                                "",
                                format!(
                                    "self-watch profile synthesized from {} samples; calibrating over {} windows",
                                    warmup.len(),
                                    cfg.calibration_windows.max(2)
                                ),
                            );
                            warmup.clear();
                        }
                        Err(e) => {
                            // Degenerate warmup (e.g. a fully idle server):
                            // keep sampling and retry with more data, but
                            // bound the buffer.
                            let first_failure =
                                shared.selfwatch.synth_errors.fetch_add(1, Ordering::Relaxed) == 0;
                            if first_failure {
                                logger.warn(0, "", format!("self-watch synthesis deferred: {e}"));
                            }
                            let cap = cfg.warmup.max(2) * 4;
                            if warmup.len() > cap {
                                let excess = warmup.len() - cap;
                                warmup.drain(..excess);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let j = i as f64;
                vec![
                    100.0 + (j % 3.0) * 0.5, // tick_ms jitter
                    0.02,
                    0.01,
                    1.5 + (j % 5.0) * 0.01,
                    0.05,
                    0.0,
                    50_000.0 + (j % 7.0) * 100.0,
                    4.0,
                    0.0,
                ]
            })
            .collect()
    }

    #[test]
    fn features_and_samples_stay_aligned() {
        let rows = steady_rows(4);
        assert!(rows.iter().all(|r| r.len() == SELF_FEATURES.len()));
        let df = sample_frame(&rows[0]);
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.n_cols(), SELF_FEATURES.len());
    }

    #[test]
    fn self_monitor_calibrates_then_alarms_on_error_burst() {
        let cfg = SelfWatchConfig {
            interval: Duration::from_millis(10),
            warmup: 16,
            window: 4,
            calibration_windows: 2,
            patience: 2,
        };
        let mut monitor = build_self_monitor(&steady_rows(16), &cfg).unwrap();
        // Stationary samples: calibrates, never alarms.
        for row in steady_rows(16) {
            monitor.ingest(&sample_frame(&row)).unwrap();
        }
        assert!(monitor.calibrated());
        assert_eq!(monitor.alarms_total(), 0);
        // Injected error burst + latency regression: alarms within
        // patience (2 windows × 4 samples).
        let mut status_alarm = false;
        for i in 0..8 {
            let mut row = steady_rows(1)[0].clone();
            row[3] = 250.0; // handle_ms regression
            row[5] = 0.9; // error_ratio burst
            row[6] = 100.0; // throughput collapse
            monitor.ingest(&sample_frame(&row)).unwrap();
            status_alarm = monitor.status().alarm;
            if status_alarm {
                assert!(i >= 3, "patience must gate the alarm (alarmed after {} samples)", i + 1);
                break;
            }
        }
        assert!(status_alarm, "induced degradation must raise the self alarm");
    }

    #[test]
    fn constant_warmup_defers_gracefully() {
        // A fully idle server produces all-constant warmup rows; whether
        // synthesis succeeds or defers, it must not panic, and a success
        // must yield a usable monitor.
        let rows: Vec<Vec<f64>> =
            (0..16).map(|_| vec![100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).collect();
        let cfg = SelfWatchConfig::default();
        if let Ok(mut m) = build_self_monitor(&rows, &cfg) {
            m.ingest(&sample_frame(&rows[0])).unwrap();
        }
    }
}
