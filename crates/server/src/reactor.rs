//! The edge-triggered epoll connection core (Linux).
//!
//! Raw `epoll` via direct syscalls against the libc `std` already links
//! — **no** `libc` crate, keeping the workspace dependency-free. The
//! shape is the classic reactor / compute-pool split:
//!
//! ```text
//!   acceptor (blocking accept, 503 shed at capacity)
//!       │ round-robin handoff (mailbox + eventfd wake)
//!       ▼
//!   R reactor threads ── epoll_wait, edge-triggered ──┐
//!       │  per-connection state machines:             │
//!       │  nonblocking read ─► RequestParser ─►       │
//!       │  dispatch ─► nonblocking buffered write     │
//!       ▼                                             │
//!   W compute workers ── route() with panic containment
//!       │  (CPU-bound work never blocks a reactor)    │
//!       └── Done{token, bytes} back via mailbox ──────┘
//! ```
//!
//! Each reactor owns its connections outright (a plain `HashMap` slab —
//! no cross-thread connection state, no locks on the hot path). The
//! only shared structures are the compute queue and each reactor's
//! mailbox, both touched once per request, not per byte.
//!
//! Semantics are identical to the threads core and pinned by the same
//! tests: keep-alive + pipelining, `408` on slow-trickle requests,
//! `413`/`431`/`505`/`501` from the shared parser, `503` shedding at
//! [`MAX_PENDING_CONNECTIONS`], panic → `500`, and graceful drain —
//! fully-received requests complete (forced `connection: close`),
//! partially-received ones are dropped at shutdown.
//!
//! Why edge-triggered: one `epoll_ctl` per connection lifetime instead
//! of one per readiness change. The rules that make ET correct here:
//! always read/write to `WouldBlock` before waiting again, and defer
//! reads while a request is executing (`readable_pending`) so a
//! pipelining client cannot grow the parser buffer without bound —
//! that's backpressure, and the kernel buffer holds the bytes.

use crate::http::{Request, RequestParser, Response};
use crate::metrics::Endpoint;
use crate::server::{
    execute, trace_ctx, Shared, TraceCtx, MAX_PENDING_CONNECTIONS, READ_TICK, REQUEST_DEADLINE,
    TRACE_HEADER, WRITE_TIMEOUT,
};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Raw syscall surface. These symbols live in the libc std already
// links; declaring them directly keeps the tree free of the `libc`
// crate while using the exact same ABI.

#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

unsafe extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `data` value reserved for the reactor's wake-up eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// An owned epoll instance.
struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn del(&self, fd: RawFd) {
        // Best effort: the kernel also drops registrations when the fd
        // closes; an error here is not actionable.
        let mut ev = EpollEvent { events: 0, data: 0 };
        unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits up to `timeout_ms`, filling `events`. Returns the number
    /// ready (0 on timeout). EINTR retries internally.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
        loop {
            let rc = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                // Unrecoverable wait failure: treat as a timeout tick;
                // the loop's shutdown polling still makes progress.
                return 0;
            }
        }
    }
}

/// A nonblocking eventfd used to wake a reactor out of `epoll_wait`.
/// Wrapped in `File` so std does the read/write syscalls.
struct EventFd {
    file: File,
}

impl EventFd {
    fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { file: unsafe { File::from_raw_fd(fd) } })
    }

    fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write(&one);
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        // Nonblocking: one read clears the counter; WouldBlock means
        // it was already clear.
        let _ = (&self.file).read(&mut buf);
    }
}

// ---------------------------------------------------------------------
// Cross-thread plumbing.

/// What lands in a reactor's mailbox.
enum Msg {
    /// A freshly accepted connection from the acceptor.
    Conn(TcpStream),
    /// A finished response from the compute pool. `trace` carries the
    /// request's trace id + endpoint label so the reactor can record
    /// the `write` phase span against the right trace.
    Done { token: u64, bytes: Vec<u8>, close: bool, trace: Option<(u64, &'static str)> },
}

/// One reactor's inbox plus the eventfd that wakes it.
struct Mailbox {
    inbox: Mutex<Vec<Msg>>,
    waker: EventFd,
}

impl Mailbox {
    fn send(&self, msg: Msg) {
        self.inbox.lock().expect("reactor lock never poisoned").push(msg);
        self.waker.wake();
    }
}

/// A routed-but-not-yet-executed request.
struct Job {
    reactor: usize,
    token: u64,
    req: Request,
    /// When the job entered the compute queue — the `queue_wait` span.
    queued: Instant,
    /// First parser activity toward this request + CPU spent parsing,
    /// recorded as the `parse` span once the endpoint label is known.
    parse_start: Instant,
    parse_spent: Duration,
    trace: Option<TraceCtx>,
}

struct ComputeState {
    jobs: VecDeque<Job>,
    /// Workers still running. `push` refuses when zero so a job can
    /// never be enqueued after the last worker exited (the reactor then
    /// closes the connection instead of waiting forever).
    alive: usize,
}

/// The compute pool's queue. Workers pop-first, then check shutdown —
/// so every job pushed while any worker is alive gets executed.
struct ComputeQueue {
    state: Mutex<ComputeState>,
    ready: Condvar,
}

impl ComputeQueue {
    fn new(workers: usize) -> ComputeQueue {
        ComputeQueue {
            state: Mutex::new(ComputeState { jobs: VecDeque::new(), alive: workers }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job; `false` when every worker has already exited.
    fn push(&self, job: Job, metrics: &crate::metrics::Metrics) -> bool {
        let mut st = self.state.lock().expect("reactor lock never poisoned");
        if st.alive == 0 {
            return false;
        }
        st.jobs.push_back(job);
        metrics.set_compute_queue_depth(st.jobs.len());
        drop(st);
        self.ready.notify_one();
        true
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

fn compute_loop(shared: &Shared, queue: &ComputeQueue, mailboxes: &[Mailbox]) {
    loop {
        let job = {
            let mut st = queue.state.lock().expect("reactor lock never poisoned");
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    shared.metrics.set_compute_queue_depth(st.jobs.len());
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    st.alive -= 1;
                    break None;
                }
                let (next, _) = queue
                    .ready
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("reactor lock never poisoned");
                st = next;
            }
        };
        let Some(job) = job else { return };
        let started = Instant::now();
        let trace_id = job.trace.as_ref().map_or(0, |t| t.id);
        let (endpoint, mut response) = execute(&job.req, shared, trace_id);
        let handle_dur = started.elapsed();
        if let Some(ctx) = &job.trace {
            response.set_header(TRACE_HEADER, ctx.echo.clone());
        }
        let keep_alive = !job.req.close && !shared.shutdown.load(Ordering::SeqCst);
        let bytes = response.serialize(keep_alive);
        shared.metrics.record_request(endpoint, response.status, started.elapsed().as_secs_f64());
        shared.log_request(
            trace_id,
            endpoint,
            &job.req.method,
            &job.req.path,
            response.status,
            started.elapsed(),
        );
        let trace = job.trace.as_ref().map(|ctx| {
            let tag = endpoint.label();
            cc_trace::record(
                cc_trace::Phase::Parse,
                ctx.id,
                tag,
                job.req.body.len() as u64,
                job.parse_start,
                job.parse_spent,
            );
            cc_trace::record(
                cc_trace::Phase::QueueWait,
                ctx.id,
                tag,
                0,
                job.queued,
                started.duration_since(job.queued),
            );
            cc_trace::record(cc_trace::Phase::Handle, ctx.id, tag, 0, started, handle_dur);
            (ctx.id, tag)
        });
        mailboxes[job.reactor].send(Msg::Done {
            token: job.token,
            bytes,
            close: !keep_alive,
            trace,
        });
    }
}

// ---------------------------------------------------------------------
// The reactor proper.

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending response bytes, written as the socket accepts them.
    out: Vec<u8>,
    out_pos: usize,
    /// A request from this connection is in the compute pool; reads are
    /// deferred (backpressure) and at most one request executes at a
    /// time (pipelined responses stay ordered).
    executing: bool,
    close_after_flush: bool,
    read_closed: bool,
    /// Readability arrived while `executing`; service it after `Done`.
    readable_pending: bool,
    last_activity: Instant,
    /// Set while a request is partially buffered — the `408` clock.
    request_started: Option<Instant>,
    /// Set while a write is blocked on the client — the write-timeout
    /// clock.
    write_started: Option<Instant>,
    /// First parser activity toward the next request (trace `parse`
    /// span anchor) + parser CPU accumulated toward it.
    parse_anchor: Option<Instant>,
    parse_spent: Duration,
}

impl Conn {
    fn new(stream: TcpStream, max_body: usize) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(max_body),
            out: Vec::new(),
            out_pos: 0,
            executing: false,
            close_after_flush: false,
            read_closed: false,
            readable_pending: false,
            last_activity: Instant::now(),
            request_started: None,
            write_started: None,
            parse_anchor: None,
            parse_spent: Duration::ZERO,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }
}

struct Reactor {
    id: usize,
    epoll: Epoll,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    shared: Arc<Shared>,
    mailboxes: Arc<Vec<Mailbox>>,
    compute: Arc<ComputeQueue>,
    /// Live-connection count shared with the acceptor (the `503`
    /// shedding threshold).
    live: Arc<AtomicUsize>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        let mut last_sweep = Instant::now();
        loop {
            let n = self.epoll.wait(&mut events, 100);
            self.shared.metrics.record_reactor_wake(n as u64);
            if n > 0 && self.shared.tracing() {
                // Wake→ready fan-in: how many fds each epoll return serviced.
                cc_trace::event(cc_trace::Phase::ReactorWake, 0, "", n as u64);
            }
            for ev in events.iter().take(n).copied() {
                let (token, bits) = (ev.data, ev.events);
                if token == WAKE_TOKEN {
                    self.mailboxes[self.id].waker.drain();
                    continue;
                }
                if !self.conns.contains_key(&token) {
                    continue; // closed earlier this batch
                }
                if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                    self.on_readable(token);
                }
                if bits & EPOLLOUT != 0 && self.conns.get(&token).is_some_and(|c| !c.flushed()) {
                    self.flush(token);
                }
            }
            self.drain_mailbox();
            if last_sweep.elapsed() >= READ_TICK {
                self.sweep();
                last_sweep = Instant::now();
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // Drop everything idle; executing/flushing connections
                // finish their (forced `connection: close`) response.
                let idle: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| !c.executing && c.flushed())
                    .map(|(&t, _)| t)
                    .collect();
                for t in idle {
                    self.close(t);
                }
                if self.conns.is_empty() {
                    self.drain_mailbox(); // drop any last handed-off conns
                    return;
                }
            }
        }
    }

    fn drain_mailbox(&mut self) {
        let msgs = std::mem::take(
            &mut *self.mailboxes[self.id].inbox.lock().expect("reactor lock never poisoned"),
        );
        if !msgs.is_empty() && self.shared.tracing() {
            // Backlog depth at each drain — a growing depth means the
            // reactor is falling behind its compute pool.
            cc_trace::event(cc_trace::Phase::MailboxDepth, 0, "", msgs.len() as u64);
        }
        for msg in msgs {
            match msg {
                Msg::Conn(stream) => self.register(stream),
                Msg::Done { token, bytes, close, trace } => {
                    self.on_done(token, bytes, close, trace)
                }
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.live.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.connection_closed();
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            self.live.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.connection_closed();
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let fd = stream.as_raw_fd();
        if self.epoll.add(fd, token, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET).is_err() {
            self.live.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.connection_closed();
            return;
        }
        self.conns.insert(token, Conn::new(stream, self.shared.config.max_body_bytes));
        // Bytes may have landed before registration; ET would never
        // re-announce them.
        self.on_readable(token);
    }

    /// Read to `WouldBlock`, then advance the parser state machine.
    fn on_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.executing {
            conn.readable_pending = true;
            return;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    let fed_at = Instant::now();
                    conn.parser.feed(&buf[..n]);
                    conn.parse_spent += fed_at.elapsed();
                    if conn.parse_anchor.is_none() {
                        conn.parse_anchor = Some(fed_at);
                    }
                    conn.last_activity = fed_at;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.advance(token);
    }

    /// Pulls the next request out of the parser and dispatches it, or
    /// books the `408` deadline / closes on EOF / answers parse errors.
    fn advance(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.executing {
            return;
        }
        let parse_started = Instant::now();
        let parsed = conn.parser.try_next();
        conn.parse_spent += parse_started.elapsed();
        match parsed {
            Ok(Some(req)) => {
                conn.request_started = None;
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    // Shutdown raced the parse: nothing was dispatched,
                    // so this request was never "in flight".
                    self.close(token);
                    return;
                }
                conn.executing = true;
                let trace = self.shared.tracing().then(|| trace_ctx(&req));
                let job = Job {
                    reactor: self.id,
                    token,
                    req,
                    queued: Instant::now(),
                    parse_start: conn.parse_anchor.take().unwrap_or(parse_started),
                    parse_spent: std::mem::take(&mut conn.parse_spent),
                    trace,
                };
                if !self.compute.push(job, &self.shared.metrics) {
                    self.close(token);
                }
            }
            Ok(None) => {
                if conn.parser.is_empty() {
                    conn.request_started = None;
                } else if conn.request_started.is_none() {
                    conn.request_started = Some(Instant::now());
                }
                if conn.read_closed && conn.flushed() {
                    // EOF with no complete request pending: clean close
                    // between requests or abrupt disconnect mid-request.
                    self.close(token);
                }
            }
            Err(e) => {
                let reply = Response::error(e.status(), e.reason()).serialize(false);
                self.shared.metrics.record_request(Endpoint::Other, e.status(), 0.0);
                self.shared.logger.warn(
                    0,
                    "",
                    format!("request rejected: {} ({})", e.reason(), e.status()),
                );
                conn.out.extend_from_slice(&reply);
                conn.close_after_flush = true;
                conn.read_closed = true;
                self.flush(token);
            }
        }
    }

    /// A response came back from the compute pool.
    fn on_done(
        &mut self,
        token: u64,
        bytes: Vec<u8>,
        close: bool,
        trace: Option<(u64, &'static str)>,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.executing = false;
        conn.out.extend_from_slice(&bytes);
        if close {
            conn.close_after_flush = true;
        }
        conn.last_activity = Instant::now();
        let write_started = Instant::now();
        self.flush(token);
        if let Some((id, tag)) = trace {
            // Covers the first write attempt; a `WouldBlock` continuation
            // via EPOLLOUT lands outside the span (the slow-client tail
            // is visible in `write_timeout` metrics instead).
            cc_trace::record(
                cc_trace::Phase::Write,
                id,
                tag,
                bytes.len() as u64,
                write_started,
                write_started.elapsed(),
            );
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.close_after_flush {
            return;
        }
        if conn.readable_pending {
            conn.readable_pending = false;
            self.on_readable(token); // ends in advance()
        } else {
            self.advance(token); // pipelined request already buffered?
        }
    }

    /// Write to `WouldBlock`; close when done if the connection is
    /// marked for close.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if conn.write_started.is_none() {
                        conn.write_started = Some(Instant::now());
                    }
                    return; // EPOLLOUT will resume us
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        conn.write_started = None;
        conn.last_activity = Instant::now();
        if conn.close_after_flush {
            self.close(token);
        }
    }

    /// The timer wheel, poor man's edition: one pass per [`READ_TICK`].
    fn sweep(&mut self) {
        let now = Instant::now();
        let keep_alive = self.shared.config.keep_alive;
        let mut deadline_408: Vec<u64> = Vec::new();
        let mut drop_now: Vec<u64> = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.write_started.is_some_and(|t| now.duration_since(t) >= WRITE_TIMEOUT) {
                // Client stopped reading: never pin memory on it.
                drop_now.push(token);
            } else if !conn.executing
                && conn.request_started.is_some_and(|t| now.duration_since(t) >= REQUEST_DEADLINE)
            {
                deadline_408.push(token);
            } else if !conn.executing
                && conn.flushed()
                && conn.parser.is_empty()
                && now.duration_since(conn.last_activity) >= keep_alive
            {
                drop_now.push(token);
            }
        }
        for token in drop_now {
            self.close(token);
        }
        for token in deadline_408 {
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            let reply = Response::error(408, "request took too long to arrive").serialize(false);
            self.shared.metrics.record_request(Endpoint::Other, 408, 0.0);
            self.shared.logger.warn(0, "", "request deadline exceeded; answered 408");
            conn.out.extend_from_slice(&reply);
            conn.close_after_flush = true;
            conn.read_closed = true;
            self.flush(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.del(conn.stream.as_raw_fd());
            self.live.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.connection_closed();
        }
    }
}

// ---------------------------------------------------------------------
// Assembly: acceptor + reactors + compute pool.

/// The running epoll core's threads and wake handles.
pub(crate) struct EpollCore {
    acceptor: std::thread::JoinHandle<()>,
    reactors: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    mailboxes: Arc<Vec<Mailbox>>,
    compute: Arc<ComputeQueue>,
}

impl EpollCore {
    /// Builds the epoll instances and eventfds (every fallible syscall
    /// happens here, before any thread spawns), then starts acceptor,
    /// reactors, and compute workers.
    pub(crate) fn start(
        listener: TcpListener,
        shared: Arc<Shared>,
        workers: usize,
    ) -> io::Result<EpollCore> {
        let reactor_count = match shared.config.reactors {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
            n => n,
        }
        .max(1);
        let mut mailboxes = Vec::with_capacity(reactor_count);
        let mut epolls = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            let epoll = Epoll::new()?;
            let waker = EventFd::new()?;
            // Level-triggered on purpose: a wake posted between drain
            // and wait must still show up.
            epoll.add(waker.file.as_raw_fd(), WAKE_TOKEN, EPOLLIN)?;
            mailboxes.push(Mailbox { inbox: Mutex::new(Vec::new()), waker });
            epolls.push(epoll);
        }
        let mailboxes = Arc::new(mailboxes);
        let compute = Arc::new(ComputeQueue::new(workers.max(1)));
        let live = Arc::new(AtomicUsize::new(0));

        let worker_threads = (0..workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                let compute = compute.clone();
                let mailboxes = mailboxes.clone();
                std::thread::spawn(move || compute_loop(&shared, &compute, &mailboxes))
            })
            .collect();
        let reactor_threads = epolls
            .into_iter()
            .enumerate()
            .map(|(id, epoll)| {
                let r = Reactor {
                    id,
                    epoll,
                    conns: HashMap::new(),
                    next_token: 0,
                    shared: shared.clone(),
                    mailboxes: mailboxes.clone(),
                    compute: compute.clone(),
                    live: live.clone(),
                };
                std::thread::spawn(move || r.run())
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            let mailboxes = mailboxes.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared, &mailboxes, &live))
        };
        Ok(EpollCore {
            acceptor,
            reactors: reactor_threads,
            workers: worker_threads,
            mailboxes,
            compute,
        })
    }

    /// Kicks every blocked thread so shutdown is noticed immediately
    /// (they would notice within one 100 ms tick regardless).
    pub(crate) fn wake(&self) {
        for m in self.mailboxes.iter() {
            m.waker.wake();
        }
        self.compute.wake_all();
    }

    /// Joins every thread (acceptor, reactors, compute workers).
    pub(crate) fn join(self) {
        let _ = self.acceptor.join();
        for r in self.reactors {
            let _ = r.join();
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Blocking accept, round-robin handoff. Same `503` shed policy as the
/// threads core, but against *live connections* (the reactors' open
/// set) rather than a pending queue — the epoll core has no queue.
fn accept_loop(listener: &TcpListener, shared: &Shared, mailboxes: &[Mailbox], live: &AtomicUsize) {
    let mut next = 0usize;
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match accepted {
            Ok((mut stream, _)) => {
                shared.metrics.record_connection();
                shared.metrics.connection_opened();
                if live.load(Ordering::SeqCst) >= MAX_PENDING_CONNECTIONS {
                    // Shed load with an answer, not a silent hang.
                    let _ = stream
                        .write_all(&Response::error(503, "server is at capacity").serialize(false));
                    shared.metrics.record_request(Endpoint::Other, 503, 0.0);
                    shared.metrics.connection_closed();
                    shared.logger.warn(0, "", "connection limit reached; connection shed with 503");
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                mailboxes[next % mailboxes.len()].send(Msg::Conn(stream));
                next = next.wrapping_add(1);
            }
            // Transient accept errors (EMFILE, aborted handshakes):
            // back off briefly instead of spinning.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}
