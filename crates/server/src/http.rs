//! A minimal-but-correct HTTP/1.1 layer on plain byte streams.
//!
//! The workspace is offline/vendored — no tokio, no hyper — so the daemon
//! speaks HTTP through this hand-rolled layer: an **incremental** request
//! parser ([`RequestParser`]) that a connection loop feeds raw reads into,
//! and a [`Response`] writer. The parser owns its buffer across calls, so
//! requests split arbitrarily across syscalls, pipelined back-to-back
//! requests, and keep-alive reuse all fall out of the same `feed` /
//! [`RequestParser::try_next`] cycle.
//!
//! Scope (exactly what the daemon needs, checked strictly):
//!
//! * request line + headers terminated by CRLF CRLF, headers bounded by
//!   [`MAX_HEADER_BYTES`] → `431` beyond that;
//! * bodies only via `Content-Length`, bounded by a configurable cap →
//!   `413` beyond it; `Transfer-Encoding` is answered `501`, never
//!   misparsed;
//! * `HTTP/1.1` (keep-alive default) and `HTTP/1.0` (close default);
//!   anything else → `505`;
//! * malformed anything → `400` with a one-line reason.

use std::fmt;

/// Hard ceiling on request-line + header bytes. Requests that have not
/// terminated their header block within this window are answered `431`.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Default ceiling on declared body sizes (32 MiB — a ~1M-row batch of
/// a few numeric columns in JSON). Configurable per parser.
pub const DEFAULT_MAX_BODY_BYTES: usize = 32 * 1024 * 1024;

/// A parse failure, carrying the HTTP status the connection should answer
/// with before closing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Structurally malformed request → `400`.
    BadRequest(&'static str),
    /// Header block exceeded [`MAX_HEADER_BYTES`] → `431`.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds the parser's cap → `413`.
    BodyTooLarge,
    /// `Transfer-Encoding` is not implemented → `501`.
    UnsupportedTransferEncoding,
    /// Not HTTP/1.0 or HTTP/1.1 → `505`.
    VersionNotSupported,
}

impl ParseError {
    /// The status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedTransferEncoding => 501,
            ParseError::VersionNotSupported => 505,
        }
    }

    /// One-line human-readable reason.
    pub fn reason(&self) -> &'static str {
        match self {
            ParseError::BadRequest(r) => r,
            ParseError::HeadersTooLarge => "header block exceeds limit",
            ParseError::BodyTooLarge => "declared body exceeds limit",
            ParseError::UnsupportedTransferEncoding => "transfer-encoding not supported",
            ParseError::VersionNotSupported => "only HTTP/1.0 and HTTP/1.1 supported",
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.reason())
    }
}

impl std::error::Error for ParseError {}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Percent-decoded path, query stripped (`/v1/check`).
    pub path: String,
    /// Percent-decoded query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, values trimmed, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked (explicitly or by HTTP/1.0 default) to
    /// close the connection after this response.
    pub close: bool,
}

impl Request {
    /// First header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The media type of the request body: `Content-Type` with any
    /// `;`-parameters stripped, lower-cased, whitespace-trimmed. `None`
    /// when the header is absent.
    pub fn media_type(&self) -> Option<String> {
        self.header("content-type")
            .map(|v| v.split(';').next().unwrap_or("").trim().to_ascii_lowercase())
    }

    /// Whether the body is a binary columnar batch
    /// ([`crate::wire::CONTENT_TYPE_COLUMNAR`]).
    pub fn body_is_columnar(&self) -> bool {
        self.media_type().as_deref() == Some(crate::wire::CONTENT_TYPE_COLUMNAR)
    }

    /// Whether the client asked for a binary columnar reply (`Accept`
    /// lists the columnar media type).
    pub fn accepts_columnar(&self) -> bool {
        self.header("accept").is_some_and(|v| {
            v.split(',').any(|t| {
                t.split(';').next().unwrap_or("").trim() == crate::wire::CONTENT_TYPE_COLUMNAR
            })
        })
    }
}

/// Incremental HTTP/1.1 request parser.
///
/// Feed raw bytes as they arrive ([`Self::feed`]); pull zero or more
/// complete requests ([`Self::try_next`]). Bytes beyond one request stay
/// buffered for the next call — pipelining needs nothing extra. Errors
/// are terminal for the connection: the buffer can no longer be framed.
pub struct RequestParser {
    buf: Vec<u8>,
    /// How far the header-terminator scan has progressed, so repeated
    /// partial feeds never rescan the whole buffer.
    scanned: usize,
    max_body: usize,
}

impl RequestParser {
    /// A parser enforcing `max_body` on declared `Content-Length`s.
    pub fn new(max_body: usize) -> Self {
        RequestParser { buf: Vec::new(), scanned: 0, max_body }
    }

    /// Appends newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the buffer holds no unconsumed bytes (an EOF here is a
    /// clean connection close; mid-request it is an abrupt disconnect).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to frame one complete request from the buffer.
    ///
    /// `Ok(None)` means "need more bytes".
    ///
    /// # Errors
    /// Any [`ParseError`] is terminal: answer it and close.
    pub fn try_next(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(header_end) = self.find_header_end() else {
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(ParseError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if header_end > MAX_HEADER_BYTES {
            return Err(ParseError::HeadersTooLarge);
        }
        // Parse the header block (bytes [0, header_end); the terminator
        // occupies [header_end, header_end + 4)).
        let head = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| ParseError::BadRequest("header block is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let (method, path, query, version) = parse_request_line(request_line)?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                return Err(ParseError::BadRequest("empty header line"));
            }
            let (name, value) =
                line.split_once(':').ok_or(ParseError::BadRequest("header line missing ':'"))?;
            if name.is_empty() || name.chars().any(|c| c.is_ascii_whitespace()) {
                return Err(ParseError::BadRequest("malformed header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        let content_length = content_length(&headers)?;
        if content_length > self.max_body {
            return Err(ParseError::BodyTooLarge);
        }
        let total = header_end + 4 + content_length;
        if self.buf.len() < total {
            return Ok(None); // Body still in flight.
        }
        let close = connection_close(&headers, version);
        let body = self.buf[header_end + 4..total].to_vec();
        self.buf.drain(..total);
        self.scanned = 0;
        Ok(Some(Request { method, path, query, headers, body, close }))
    }

    /// Position of the `\r\n\r\n` header terminator, resuming from the
    /// previous scan position.
    fn find_header_end(&mut self) -> Option<usize> {
        let start = self.scanned.saturating_sub(3);
        let found = self.buf[start..].windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + start);
        if found.is_none() {
            self.scanned = self.buf.len();
        }
        found
    }
}

/// HTTP version of a request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Version {
    Http10,
    Http11,
}

type RequestLine = (String, String, Vec<(String, String)>, Version);

fn parse_request_line(line: &str) -> Result<RequestLine, ParseError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::BadRequest("request line is not 'METHOD TARGET VERSION'"));
    };
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(ParseError::BadRequest("malformed method"));
    }
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        _ => return Err(ParseError::VersionNotSupported),
    };
    if !target.starts_with('/') {
        return Err(ParseError::BadRequest("target must be origin-form (start with '/')"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or(ParseError::BadRequest("invalid percent-encoding in path"))?;
    let mut query = Vec::new();
    for pair in raw_query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k =
            percent_decode(k).ok_or(ParseError::BadRequest("invalid percent-encoding in query"))?;
        let v =
            percent_decode(v).ok_or(ParseError::BadRequest("invalid percent-encoding in query"))?;
        query.push((k, v));
    }
    Ok((method.to_owned(), path, query, version))
}

/// Decodes `%XX` escapes and `+`-as-space. `None` on truncated or
/// non-hex escapes or when the decoded bytes are not UTF-8.
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') && !s.contains('+') {
        return Some(s.to_owned());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Extracts and validates `Content-Length` (0 when absent; duplicate
/// headers must agree, as RFC 9112 §6.2 requires).
fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut seen: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        let n: usize = v
            .parse()
            .map_err(|_| ParseError::BadRequest("content-length is not a non-negative integer"))?;
        if seen.is_some_and(|prev| prev != n) {
            return Err(ParseError::BadRequest("conflicting content-length headers"));
        }
        seen = Some(n);
    }
    Ok(seen.unwrap_or(0))
}

/// Whether the connection should close after this request: explicit
/// `Connection: close`, or HTTP/1.0 without `Connection: keep-alive`.
fn connection_close(headers: &[(String, String)], version: Version) -> bool {
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
        .unwrap_or_default();
    match version {
        Version::Http11 => connection.split(',').any(|t| t.trim() == "close"),
        Version::Http10 => !connection.split(',').any(|t| t.trim() == "keep-alive"),
    }
}

/// Stable machine-readable error-code slug for the status codes this
/// daemon emits — the `error.code` field of the structured error
/// envelope (see [`Response::error`]).
pub fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "request_timeout",
        409 => "conflict",
        413 => "payload_too_large",
        431 => "headers_too_large",
        500 => "internal",
        501 => "not_implemented",
        503 => "unavailable",
        505 => "http_version",
        _ => "error",
    }
}

/// Canonical reason phrase for the status codes this daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An outgoing response: status + content type + body, serialized with
/// `Content-Length` framing and an explicit `Connection` header.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Additional headers (name, value), written after the fixed set.
    /// Empty for almost every response, so serialization is byte-for-byte
    /// unchanged unless a header is explicitly attached.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(value: &serde_json::Value) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body: serde_json::to_string(value).expect("value trees serialize").into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// An error response carrying the structured envelope every non-2xx
    /// JSON body uses:
    /// `{"error": {"code": "<slug>", "message": "<human text>"}}`.
    /// The `code` is derived from the status ([`error_code`]); the
    /// message is free-form human-readable text.
    pub fn error(status: u16, message: &str) -> Self {
        Response::error_detail(status, message, None)
    }

    /// [`Self::error`] with an optional machine-readable `detail` value
    /// attached inside the envelope.
    pub fn error_detail(status: u16, message: &str, detail: Option<serde_json::Value>) -> Self {
        let mut inner = vec![
            ("code".to_owned(), serde_json::Value::String(error_code(status).to_owned())),
            ("message".to_owned(), serde_json::Value::String(message.to_owned())),
        ];
        if let Some(d) = detail {
            inner.push(("detail".to_owned(), d));
        }
        let v =
            serde_json::Value::Object(vec![("error".to_owned(), serde_json::Value::Object(inner))]);
        Response { status, ..Response::json(&v) }
    }

    /// A `200 OK` response whose body is already-serialized JSON — the
    /// `cc_state`-enveloped fleet payloads, which arrive pre-encoded so
    /// their checksum covers the exact bytes on the wire.
    pub fn json_text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A `200 OK` binary columnar response (see [`crate::wire`]).
    pub fn columnar(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            content_type: crate::wire::CONTENT_TYPE_COLUMNAR,
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// Attaches an extra response header.
    pub fn set_header(&mut self, name: &'static str, value: String) {
        self.extra_headers.push((name, value));
    }

    /// Serializes the response head + body into one buffer (a single
    /// write per response keeps small responses in one TCP segment).
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = Vec::with_capacity(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> Result<Vec<Request>, ParseError> {
        let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        p.feed(input);
        let mut out = Vec::new();
        while let Some(r) = p.try_next()? {
            out.push(r);
        }
        Ok(out)
    }

    #[test]
    fn simple_get() {
        let rs = parse_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].method, "GET");
        assert_eq!(rs[0].path, "/healthz");
        assert!(!rs[0].close);
        assert!(rs[0].body.is_empty());
    }

    #[test]
    fn query_and_percent_decoding() {
        let rs = parse_all(b"GET /v1/check?top=5&profile=my%20name+x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(rs[0].query_param("top"), Some("5"));
        assert_eq!(rs[0].query_param("profile"), Some("my name x"));
    }

    #[test]
    fn connection_semantics() {
        let rs = parse_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(rs[0].close);
        let rs = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(rs[0].close, "HTTP/1.0 defaults to close");
        let rs = parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(!rs[0].close);
    }

    #[test]
    fn version_and_method_rejection() {
        assert_eq!(parse_all(b"GET / HTTP/2\r\n\r\n"), Err(ParseError::VersionNotSupported));
        assert!(matches!(parse_all(b"get / HTTP/1.1\r\n\r\n"), Err(ParseError::BadRequest(_))));
        assert!(matches!(parse_all(b"GET /\r\n\r\n"), Err(ParseError::BadRequest(_))));
        assert!(matches!(parse_all(b"GET x HTTP/1.1\r\n\r\n"), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn transfer_encoding_rejected() {
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn conflicting_content_lengths_rejected() {
        assert!(matches!(
            parse_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\nab"),
            Err(ParseError::BadRequest(_))
        ));
        // Agreeing duplicates are fine.
        let rs = parse_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nab")
            .unwrap();
        assert_eq!(rs[0].body, b"ab");
    }

    #[test]
    fn response_serialization() {
        let r = Response::error(404, "no such profile");
        let bytes = r.serialize(true);
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 404 Not Found\r\n"), "{s}");
        assert!(s.contains("connection: keep-alive"));
        assert!(
            s.ends_with("{\"error\":{\"code\":\"not_found\",\"message\":\"no such profile\"}}"),
            "{s}"
        );
        let s = String::from_utf8(Response::text(200, "ok".into()).serialize(false)).unwrap();
        assert!(s.contains("connection: close"));
    }
}
