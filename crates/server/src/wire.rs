//! The binary columnar batch encoding — the fast wire path.
//!
//! JSON batches pay for themselves twice on the hot path: every `f64` is
//! formatted shortest-round-trip on the client and re-parsed on the
//! server (and again in the other direction for the reply). This module
//! defines a length-prefixed binary layout that deserializes straight
//! into the SoA column planes [`cc_frame::NumericView::gather_chunk`]
//! consumes — zero float parsing, zero per-row allocation — negotiated
//! per request via `Content-Type:` [`CONTENT_TYPE_COLUMNAR`] (requests)
//! and `Accept:` (replies). JSON stays the default and is bit-compatible:
//! both encodings carry `f64`s exactly, so `/v1/check` answers are
//! identical to the bit either way.
//!
//! ## Byte layout (all integers little-endian)
//!
//! ```text
//! offset size  field
//! 0      4     magic  "CCOL"
//! 4      2     version (currently 1)
//! 6      2     flags   (must be 0)
//! 8      4     column count  (u32)
//! 12     8     row count     (u64)
//! 20     …     columns, back to back, each:
//!        1     kind: 0 = numeric, 1 = categorical
//!        4     name length (u32), then that many UTF-8 name bytes
//!   numeric:     row-count × 8   f64 LE plane
//!   categorical: 4  dictionary length (u32)
//!                per entry: 4 label length (u32) + UTF-8 label bytes
//!                row-count × 4   u32 LE code plane
//! ```
//!
//! Decoding is strict: truncated buffers, trailing bytes, bad magic,
//! unknown versions, out-of-range dictionary codes, and duplicate column
//! names are all errors (the API layer maps them to `400`), never panics.

use cc_frame::{Column, DataFrame};

/// The negotiated media type for binary columnar bodies and replies.
pub const CONTENT_TYPE_COLUMNAR: &str = "application/x-ccsynth-columnar";

/// Leading magic bytes of every columnar frame.
pub const MAGIC: [u8; 4] = *b"CCOL";

/// The one encoding version this build speaks.
pub const VERSION: u16 = 1;

/// Column-kind tag for an `f64` plane.
const KIND_NUMERIC: u8 = 0;
/// Column-kind tag for a dictionary-encoded plane.
const KIND_CATEGORICAL: u8 = 1;

/// A decode failure, carrying the request-shaped message for a `400`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "columnar frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Encodes a frame into the wire layout, columns in frame order.
pub fn encode_frame(df: &DataFrame) -> Vec<u8> {
    // Numeric planes dominate; reserve for them up front.
    let mut out = Vec::with_capacity(20 + df.n_cols() * (16 + df.n_rows() * 8));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(df.n_cols() as u32).to_le_bytes());
    out.extend_from_slice(&(df.n_rows() as u64).to_le_bytes());
    for name in df.names() {
        let col = df.column(name).expect("listed column");
        match col {
            Column::Numeric(vals) => {
                out.push(KIND_NUMERIC);
                push_str(&mut out, name);
                for v in vals {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Categorical { codes, dict } => {
                out.push(KIND_CATEGORICAL);
                push_str(&mut out, name);
                out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for label in dict {
                    push_str(&mut out, label);
                }
                for c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Encodes a violations vector as a one-column frame (`"violations"`) —
/// the binary `/v1/check` reply body.
pub fn encode_violations(violations: &[f64]) -> Vec<u8> {
    let mut df = DataFrame::new();
    df.push_numeric("violations", violations.to_vec()).expect("single fresh column");
    encode_frame(&df)
}

/// Pulls the violations plane back out of a binary `/v1/check` reply.
///
/// # Errors
/// Fails when the body is not a frame holding a numeric `violations`
/// column.
pub fn decode_violations(bytes: &[u8]) -> Result<Vec<f64>, WireError> {
    let df = decode_frame(bytes)?;
    match df.numeric("violations") {
        Ok(v) => Ok(v.to_vec()),
        Err(e) => err(format!("reply lacks a numeric 'violations' column: {e}")),
    }
}

/// Decodes a wire buffer into a [`DataFrame`].
///
/// # Errors
/// Any structural problem — truncation, trailing bytes, bad magic or
/// version, non-UTF-8 names, out-of-range codes, duplicate or
/// length-mismatched columns — is a [`WireError`].
pub fn decode_frame(bytes: &[u8]) -> Result<DataFrame, WireError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return err("bad magic (expected 'CCOL')");
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
    if version != VERSION {
        return err(format!("unsupported version {version} (this build speaks {VERSION})"));
    }
    let flags = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
    if flags != 0 {
        return err(format!("unsupported flags {flags:#06x}"));
    }
    let n_cols = r.u32()? as usize;
    let n_rows = r.u64()?;
    let n_rows = usize::try_from(n_rows).map_err(|_| WireError("row count overflow".into()))?;
    // A frame can never be smaller than its declared planes; reject
    // absurd counts before any allocation is sized from them.
    if n_cols.saturating_mul(1 + 4) > r.remaining()
        || n_rows.saturating_mul(n_cols) > usize::MAX / 8
    {
        return err("declared shape exceeds the buffer");
    }
    let mut df = DataFrame::new();
    for _ in 0..n_cols {
        let kind = r.take(1)?[0];
        let name = r.string()?;
        let col = match kind {
            KIND_NUMERIC => {
                let plane = r.take(n_rows.checked_mul(8).ok_or_else(too_large)?)?;
                // The payload is raw IEEE-754 LE: one pass of 8-byte
                // loads, no text parsing, no per-row allocation.
                let vals: Vec<f64> = plane
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect();
                Column::Numeric(vals)
            }
            KIND_CATEGORICAL => {
                let dict_len = r.u32()? as usize;
                if dict_len.saturating_mul(4) > r.remaining() {
                    return err("dictionary length exceeds the buffer");
                }
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(r.string()?);
                }
                let plane = r.take(n_rows.checked_mul(4).ok_or_else(too_large)?)?;
                let codes: Vec<u32> = plane
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect();
                match Column::categorical_from_parts(codes, dict) {
                    Some(c) => c,
                    None => return err(format!("column '{name}' has out-of-range codes")),
                }
            }
            k => return err(format!("unknown column kind {k}")),
        };
        df.push_column(name, col).map_err(|e| WireError(e.to_string()))?;
    }
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after the last column", r.remaining()));
    }
    Ok(df)
}

fn too_large() -> WireError {
    WireError("declared plane size overflows".into())
}

/// Appends a u32-length-prefixed UTF-8 string.
fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over the wire buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return err(format!(
                "truncated: needed {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => err("string field is not UTF-8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new();
        df.push_numeric("x", vec![1.5, f64::NAN, -0.0, f64::INFINITY]).unwrap();
        df.push_categorical("g", &["b", "a", "b", "c"]).unwrap();
        df.push_numeric("y", vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        df
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn roundtrip_is_bit_identical_and_order_preserving() {
        let df = sample();
        let back = decode_frame(&encode_frame(&df)).unwrap();
        assert_eq!(back.names(), df.names());
        assert_eq!(bits(back.numeric("x").unwrap()), bits(df.numeric("x").unwrap()));
        assert_eq!(bits(back.numeric("y").unwrap()), bits(df.numeric("y").unwrap()));
        assert_eq!(back.categorical("g").unwrap(), df.categorical("g").unwrap());
    }

    #[test]
    fn degenerate_shapes_roundtrip() {
        // No columns at all.
        let empty = DataFrame::new();
        let back = decode_frame(&encode_frame(&empty)).unwrap();
        assert_eq!((back.n_rows(), back.n_cols()), (0, 0));
        // Columns with zero rows (type information survives).
        let mut df = DataFrame::new();
        df.push_numeric("x", Vec::new()).unwrap();
        df.push_categorical::<&str>("g", &[]).unwrap();
        let back = decode_frame(&encode_frame(&df)).unwrap();
        assert_eq!(back.n_rows(), 0);
        assert!(back.numeric("x").is_ok());
        assert!(back.categorical("g").is_ok());
    }

    #[test]
    fn violations_reply_roundtrip() {
        let v = vec![0.0, 1.5, f64::NAN, 3.75];
        let got = decode_violations(&encode_violations(&v)).unwrap();
        assert_eq!(bits(&got), bits(&v));
        assert!(decode_violations(&encode_frame(&DataFrame::new())).is_err());
    }

    #[test]
    fn malformed_frames_rejected_not_panicking() {
        let good = encode_frame(&sample());
        // Every truncation point errors cleanly.
        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut]).is_err(), "truncation at {cut} accepted");
        }
        // Trailing bytes.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
        // Bad magic / version / flags / kind.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_frame(&bad).unwrap_err().0.contains("magic"));
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(decode_frame(&bad).unwrap_err().0.contains("version"));
        let mut bad = good.clone();
        bad[6] = 1;
        assert!(decode_frame(&bad).unwrap_err().0.contains("flags"));
        let mut bad = good;
        bad[20] = 7; // first column's kind tag
        assert!(decode_frame(&bad).unwrap_err().0.contains("kind"));
        // Absurd declared shapes must not allocate or panic.
        let mut huge = encode_frame(&DataFrame::new());
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&huge).is_err());
        let mut huge = encode_frame(&sample());
        huge[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_frame(&huge).is_err());
    }

    #[test]
    fn out_of_range_codes_rejected() {
        let mut df = DataFrame::new();
        df.push_categorical("g", &["a", "b"]).unwrap();
        let mut bytes = encode_frame(&df);
        // The final 4 bytes are row 1's code; point it past the dict.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&9u32.to_le_bytes());
        assert!(decode_frame(&bytes).unwrap_err().0.contains("out-of-range"));
    }
}
