//! Fleet roles: shard delta export and coordinator-side merged detection.
//!
//! Scale-out splits a tuple stream across N `cc_server` **shards** by
//! tumbling window: the stream's global window sequence ("epochs") is
//! dealt round-robin, epoch `g` to shard `g mod N`, so each shard ingests
//! whole windows through the ordinary ingest path. A shard arms its
//! monitors' bounded export logs ([`cc_monitor::OnlineMonitor::
//! set_export_cap`]) and answers `GET /v2/monitors/{name}/deltas?since=`
//! with the closed windows a coordinator has not merged yet.
//!
//! The **coordinator** holds a [`cc_monitor::MergedMonitor`] per monitor
//! name. Its pull loop ([`pull_loop`]) polls every shard, absorbs their
//! delta batches in arrival order, and the merged monitor re-interleaves
//! them into global epoch order before driving the *same* detection and
//! resynthesis code a single node runs — bit-identical to one node
//! ingesting the undealt stream (the invariant
//! `crates/monitor/tests/fleet_merge.rs` pins). Shards may also *push*
//! batches at `POST /v2/fleet/shards/{index}/deltas`; push and pull
//! absorb through the same [`FleetState::absorb`].
//!
//! [`FleetState`] is the role object the router consults: `Standalone`
//! nodes carry an empty one (every fleet branch is a no-op), shards gate
//! the delta-export route, coordinators gate ingest (`409` — merged
//! monitors are fed by deltas, not rows) and surface merged statuses
//! through `/v2/monitors` and `/metrics`.

use crate::client::HttpClient;
use cc_monitor::{MergedMonitor, MonitorStatus, ShardDeltaBatch, RESERVED_NAME_PREFIX};
use serde_json::Value;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default bound on a shard monitor's export log: how many closed
/// windows a shard retains for coordinators that fall behind.
pub const DEFAULT_EXPORT_CAP: usize = 1024;

/// Default coordinator poll cadence.
pub const DEFAULT_PULL_INTERVAL: Duration = Duration::from_millis(500);

/// What this node is in the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Not in a fleet: ingest locally, no delta export (the default).
    Standalone,
    /// Owns every `g ≡ s (mod N)` epoch of the stream; exports closed
    /// windows as deltas.
    Shard,
    /// Ingests no rows; merges shard deltas into fleet-wide monitors.
    Coordinator,
}

impl Role {
    /// Parses a `--role` spelling.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "standalone" => Some(Role::Standalone),
            "shard" => Some(Role::Shard),
            "coordinator" => Some(Role::Coordinator),
            _ => None,
        }
    }

    /// The canonical spelling (what `parse` accepts, what `/healthz`
    /// reports).
    pub fn name(self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Shard => "shard",
            Role::Coordinator => "coordinator",
        }
    }
}

/// One merged monitor plus per-shard bookkeeping.
struct MergedEntry {
    name: String,
    merged: MergedMonitor,
    /// Each shard's self-reported closed-window count (its export
    /// high-water mark) — `reported[s] - merged.cursor(s)` is how far
    /// the coordinator trails that shard.
    reported: Vec<u64>,
    /// Each shard's self-reported ingested-row count.
    reported_rows: Vec<u64>,
}

/// Poll-health counters for one shard.
#[derive(Clone, Default)]
struct ShardHealth {
    polls: u64,
    errors: u64,
    last_error: Option<String>,
}

struct FleetInner {
    monitors: Vec<MergedEntry>,
    health: Vec<ShardHealth>,
}

/// What one absorbed delta batch did (the push endpoint's answer).
pub struct AbsorbReport {
    /// Monitor name.
    pub monitor: String,
    /// Deltas accepted from this batch (replays skip silently).
    pub absorbed: usize,
    /// Global epochs merged so far across all shards.
    pub epochs_merged: u64,
    /// This shard's next expected local epoch.
    pub cursor: u64,
}

/// The node's fleet role, membership, and (on a coordinator) the merged
/// monitors. One per server, shared by the router and the pull loop.
pub struct FleetState {
    role: Role,
    shards: Vec<String>,
    export_cap: usize,
    pull_interval: Duration,
    inner: Mutex<FleetInner>,
}

impl FleetState {
    /// A standalone node: no shards, no merged monitors, every fleet
    /// branch in the router a no-op.
    pub fn standalone() -> FleetState {
        FleetState::new(Role::Standalone, Vec::new(), DEFAULT_EXPORT_CAP, DEFAULT_PULL_INTERVAL)
    }

    /// A fleet node. `shards` are the coordinator's poll targets
    /// (`host:port`), empty for shard/standalone roles.
    pub fn new(
        role: Role,
        shards: Vec<String>,
        export_cap: usize,
        pull_interval: Duration,
    ) -> FleetState {
        let health = vec![ShardHealth::default(); shards.len()];
        FleetState {
            role,
            shards,
            export_cap,
            pull_interval,
            inner: Mutex::new(FleetInner { monitors: Vec::new(), health }),
        }
    }

    /// This node's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The coordinator's shard addresses (empty on other roles).
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The export-log bound shards arm their monitors with.
    pub fn export_cap(&self) -> usize {
        self.export_cap
    }

    /// The coordinator poll cadence.
    pub fn pull_interval(&self) -> Duration {
        self.pull_interval
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, FleetInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Absorbs one shard's delta batch into the named merged monitor,
    /// creating it (from the batch's own profile + config) on first
    /// sight. Both the push endpoint and the pull loop land here.
    ///
    /// # Errors
    /// Rejects generation skew (the shard adopted a proposal the merged
    /// monitor has not), geometry/stat mismatches, and delta gaps.
    pub fn absorb(&self, shard: usize, batch: &ShardDeltaBatch) -> Result<AbsorbReport, String> {
        let n = self.shards.len();
        if shard >= n {
            return Err(format!("no shard {shard} (fleet has {n} shard(s))"));
        }
        let mut inner = self.inner();
        if !inner.monitors.iter().any(|e| e.name == batch.monitor) {
            let cfg = batch
                .config
                .clone()
                .into_config()
                .map_err(|e| format!("bad monitor config in delta batch: {e}"))?;
            let merged = MergedMonitor::new(batch.profile.clone(), cfg, n)
                .map_err(|e| format!("cannot build merged monitor: {e}"))?;
            inner.monitors.push(MergedEntry {
                name: batch.monitor.clone(),
                merged,
                reported: vec![0; n],
                reported_rows: vec![0; n],
            });
        }
        let entry = inner
            .monitors
            .iter_mut()
            .find(|e| e.name == batch.monitor)
            .expect("entry exists or was just created");
        let local = entry.merged.monitor().generation();
        if batch.generation != local {
            return Err(format!(
                "shard {shard} is at profile generation {} but the merged monitor is at {local}; \
                 adopt proposals consistently across the fleet",
                batch.generation
            ));
        }
        entry
            .merged
            .offer(shard, &batch.deltas)
            .map_err(|e| format!("delta absorption failed: {e}"))?;
        entry.reported[shard] = entry.reported[shard].max(batch.windows_closed);
        entry.reported_rows[shard] = entry.reported_rows[shard].max(batch.rows_ingested);
        Ok(AbsorbReport {
            monitor: batch.monitor.clone(),
            absorbed: batch.deltas.len(),
            epochs_merged: entry.merged.epochs_merged(),
            cursor: entry.merged.cursor(shard),
        })
    }

    /// The next local epoch to request from `shard` for `monitor` — the
    /// pull loop's `?since=` cursor. 0 for monitors not yet seen.
    pub fn cursor(&self, monitor: &str, shard: usize) -> u64 {
        self.inner()
            .monitors
            .iter()
            .find(|e| e.name == monitor)
            .map_or(0, |e| e.merged.cursor(shard))
    }

    /// One merged monitor's published status.
    pub fn monitor_status(&self, name: &str) -> Option<MonitorStatus> {
        self.inner().monitors.iter().find(|e| e.name == name).map(|e| e.merged.monitor().status())
    }

    /// Every merged monitor's status, in creation order.
    pub fn monitor_statuses(&self) -> Vec<(String, MonitorStatus)> {
        self.inner()
            .monitors
            .iter()
            .map(|e| (e.name.clone(), e.merged.monitor().status()))
            .collect()
    }

    /// Runs `f` against the named merged monitor under the fleet lock.
    /// `None` when no such merged monitor exists.
    pub fn with_merged<R>(&self, name: &str, f: impl FnOnce(&mut MergedMonitor) -> R) -> Option<R> {
        let mut inner = self.inner();
        inner.monitors.iter_mut().find(|e| e.name == name).map(|e| f(&mut e.merged))
    }

    /// Records one poll attempt's outcome for a shard.
    pub fn record_poll(&self, shard: usize, error: Option<String>) {
        let mut inner = self.inner();
        let Some(h) = inner.health.get_mut(shard) else { return };
        h.polls += 1;
        if let Some(e) = error {
            h.errors += 1;
            h.last_error = Some(e);
        } else {
            h.last_error = None;
        }
    }

    /// `GET /v2/fleet/shards`: role, membership, poll health, and how
    /// far the merge trails each shard's own close count.
    pub fn describe(&self) -> Value {
        use crate::json::{obj, string};
        let inner = self.inner();
        let shards: Vec<Value> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, url)| {
                let h = &inner.health[s];
                let windows: u64 = inner.monitors.iter().map(|e| e.reported[s]).sum();
                let rows: u64 = inner.monitors.iter().map(|e| e.reported_rows[s]).sum();
                let lag: u64 = inner
                    .monitors
                    .iter()
                    .map(|e| e.reported[s].saturating_sub(e.merged.cursor(s)))
                    .sum();
                let mut fields = vec![
                    ("index", Value::Number(s as f64)),
                    ("url", string(url)),
                    ("polls", Value::Number(h.polls as f64)),
                    ("errors", Value::Number(h.errors as f64)),
                    ("windows_closed", Value::Number(windows as f64)),
                    ("rows_ingested", Value::Number(rows as f64)),
                    ("lag_windows", Value::Number(lag as f64)),
                ];
                if let Some(e) = &h.last_error {
                    fields.push(("last_error", string(e)));
                }
                obj(fields)
            })
            .collect();
        let monitors: Vec<Value> = inner
            .monitors
            .iter()
            .map(|e| {
                let cursors: Vec<Value> = (0..self.shards.len())
                    .map(|s| Value::Number(e.merged.cursor(s) as f64))
                    .collect();
                obj(vec![
                    ("monitor", string(&e.name)),
                    ("epochs_merged", Value::Number(e.merged.epochs_merged() as f64)),
                    ("cursors", Value::Array(cursors)),
                ])
            })
            .collect();
        obj(vec![
            ("role", string(self.role.name())),
            ("export_cap", Value::Number(self.export_cap as f64)),
            ("pull_interval_ms", Value::Number(self.pull_interval.as_secs_f64() * 1e3)),
            ("shards", Value::Array(shards)),
            ("monitors", Value::Array(monitors)),
        ])
    }

    /// Appends the fleet's Prometheus series to a `/metrics` exposition
    /// (no-op off the coordinator role).
    pub fn render_prometheus(&self, out: &mut String) {
        if self.shards.is_empty() {
            return;
        }
        let inner = self.inner();
        out.push_str("# HELP ccsynth_fleet_shard_polls_total Poll attempts per shard.\n");
        out.push_str("# TYPE ccsynth_fleet_shard_polls_total counter\n");
        for (s, h) in inner.health.iter().enumerate() {
            out.push_str(&format!(
                "ccsynth_fleet_shard_polls_total{{shard=\"{s}\"}} {}\n",
                h.polls
            ));
        }
        out.push_str("# HELP ccsynth_fleet_shard_errors_total Failed polls per shard.\n");
        out.push_str("# TYPE ccsynth_fleet_shard_errors_total counter\n");
        for (s, h) in inner.health.iter().enumerate() {
            out.push_str(&format!(
                "ccsynth_fleet_shard_errors_total{{shard=\"{s}\"}} {}\n",
                h.errors
            ));
        }
        out.push_str(
            "# HELP ccsynth_fleet_shard_lag_windows Closed windows a shard reports that the \
             coordinator has not merged.\n",
        );
        out.push_str("# TYPE ccsynth_fleet_shard_lag_windows gauge\n");
        for s in 0..self.shards.len() {
            let lag: u64 = inner
                .monitors
                .iter()
                .map(|e| e.reported[s].saturating_sub(e.merged.cursor(s)))
                .sum();
            out.push_str(&format!("ccsynth_fleet_shard_lag_windows{{shard=\"{s}\"}} {lag}\n"));
        }
        out.push_str(
            "# HELP ccsynth_fleet_epochs_merged_total Global epochs merged per monitor.\n",
        );
        out.push_str("# TYPE ccsynth_fleet_epochs_merged_total counter\n");
        for e in &inner.monitors {
            out.push_str(&format!(
                "ccsynth_fleet_epochs_merged_total{{monitor=\"{}\"}} {}\n",
                e.name,
                e.merged.epochs_merged()
            ));
        }
    }
}

/// The coordinator's poll thread body: every `pull_interval`, pull each
/// shard's monitors and absorb their deltas, until `shutdown` flips. The
/// tick stays short so shutdown is prompt regardless of the interval.
pub fn pull_loop(fleet: &FleetState, shutdown: &AtomicBool) {
    let interval = fleet.pull_interval();
    let tick = interval.min(Duration::from_millis(100));
    // Fire immediately on boot: the first merge shouldn't wait a full
    // interval behind catch-up-hungry tests and CLIs.
    let mut last_pull = Instant::now().checked_sub(interval).unwrap_or_else(Instant::now);
    while !shutdown.load(Ordering::Acquire) {
        if last_pull.elapsed() >= interval {
            pull_once(fleet);
            last_pull = Instant::now();
        }
        std::thread::sleep(tick);
    }
}

/// One poll round over every shard. Failures are recorded per shard and
/// never abort the round — a down shard stalls only its own epochs (the
/// merged monitor buffers the others' deltas until it returns).
pub fn pull_once(fleet: &FleetState) {
    for (s, url) in fleet.shards().iter().enumerate() {
        let outcome = pull_shard(fleet, s, url);
        fleet.record_poll(s, outcome.err());
    }
}

/// Polls one shard: discover its monitors, then fetch + absorb each
/// one's deltas from this coordinator's cursor.
fn pull_shard(fleet: &FleetState, shard: usize, url: &str) -> Result<(), String> {
    let addr = url
        .to_socket_addrs()
        .map_err(|e| format!("resolve {url}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {url}: no address"))?;
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {url}: {e}"))?;
    let resp = client.get("/v2/monitors").map_err(|e| format!("GET /v2/monitors: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /v2/monitors: HTTP {}", resp.status));
    }
    let body = resp.json().map_err(|e| format!("GET /v2/monitors: bad JSON: {e}"))?;
    let mut names: Vec<String> = Vec::new();
    if let Some(Value::Array(list)) = crate::json::get(&body, "monitors") {
        for entry in list {
            if let Some(name) = crate::json::get(entry, "monitor").and_then(crate::json::as_str) {
                // The shard's own self-watch stream is per-node state,
                // not a deal of the fleet's stream — never merged.
                if !name.starts_with(RESERVED_NAME_PREFIX) {
                    names.push(name.to_owned());
                }
            }
        }
    }
    for name in names {
        let since = fleet.cursor(&name, shard);
        let target = format!("/v2/monitors/{name}/deltas?since={since}");
        let resp = client.get(&target).map_err(|e| format!("GET {target}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("GET {target}: HTTP {}: {}", resp.status, resp.text()));
        }
        let batch: ShardDeltaBatch = cc_state::decode_envelope(resp.text())
            .map_err(|e| format!("GET {target}: bad envelope: {e}"))?;
        fleet.absorb(shard, &batch).map_err(|e| format!("absorb from shard {shard}: {e}"))?;
    }
    Ok(())
}
