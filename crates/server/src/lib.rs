//! # cc_server — the conformance serving daemon
//!
//! A long-running HTTP service in front of the compiled serving engine:
//! the paper frames conformance constraints as a *trust layer for
//! deployed data-driven systems* (§1, §2), and a trust layer has to
//! answer check / explain / drift queries online, not per-process. This
//! crate is that layer, **dependency-free**: the workspace is
//! offline/vendored, so the HTTP/1.1 protocol ([`http`]), the worker
//! pool ([`server`]), and the Prometheus exposition ([`metrics`]) are
//! all built directly on `std::net` + `std::thread`.
//!
//! ```text
//!            ┌──────────────────────────────────────────────┐
//!  TCP ──►   │ acceptor ─► reactors (epoll, edge-triggered  │
//!            │   non-blocking state machines: RequestParser)│
//!            │        ─► compute pool: route ─► Response    │
//!            │   (or: acceptor ─► queue ─► blocking worker  │
//!            │    pool — the portable `--io threads` core)  │
//!            │                 │                            │
//!            │                 ▼ pinned Arc<Snapshot>       │
//!            │ ProfileRegistry: dir of profile JSON ─►      │
//!            │   ConformanceProfile ─► CompiledProfile      │
//!            │   (compiled once, hot-swapped atomically)    │
//!            └──────────────────────────────────────────────┘
//! ```
//!
//! Two request/reply encodings ride the same endpoints: columnar JSON
//! (the compatible default) and the length-prefixed binary columnar
//! format ([`wire`]) negotiated via `Content-Type`/`Accept` — same
//! `f64` bits either way, with zero float parsing on the binary path.
//!
//! The registry ([`registry`]) loads `ccsynth profile --out`-style JSON
//! files, lowers each to its [`conformance::CompiledProfile`] once, and
//! publishes immutable snapshots behind `RwLock<Arc<…>>` — `POST
//! /v1/reload` swaps profiles atomically under live traffic without
//! disturbing in-flight requests. Violations served over HTTP are
//! **bit-identical** to direct [`conformance::CompiledProfile::violations`]
//! calls: the vendored JSON layer formats `f64`s shortest-round-trip, and
//! the loopback equivalence test pins the property end to end.
//!
//! ## Embedding
//!
//! ```no_run
//! use cc_server::{ProfileRegistry, Server, ServerConfig};
//!
//! let registry = ProfileRegistry::from_dir("profiles").unwrap();
//! let handle = Server::start(ServerConfig::default(), registry).unwrap();
//! println!("listening on http://{}", handle.addr());
//! // … traffic …
//! handle.shutdown(); // graceful: in-flight requests complete
//! ```

pub mod api;
pub mod client;
pub mod fleet;
pub mod http;
pub mod json;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod registry;
pub mod selfwatch;
pub mod server;
pub mod state;
pub mod wire;

pub use cc_monitor::MonitorSet;
pub use cc_obs as obs;
pub use client::{ClientResponse, HttpClient};
pub use fleet::{FleetState, Role, DEFAULT_EXPORT_CAP, DEFAULT_PULL_INTERVAL};
pub use http::{ParseError, Request, RequestParser, Response, MAX_HEADER_BYTES};
pub use metrics::{Endpoint, Metrics, MonitorSeries};
pub use registry::{ProfileEntry, ProfileRegistry, Snapshot};
pub use selfwatch::{SelfWatchConfig, SelfWatchState, SELF_FEATURES, SELF_MONITOR};
pub use server::{IoMode, LogSink, Server, ServerConfig, ServerHandle};
pub use state::{Durability, SaveReport, STATE_FILE};
pub use wire::{WireError, CONTENT_TYPE_COLUMNAR};
