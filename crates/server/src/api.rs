//! Endpoint routing and handlers.
//!
//! Routing is **table-driven**: one static `ROUTES` table of
//! `(method, pattern, handler)` rows, where a pattern is a sequence of
//! literal and `{param}` segments. The router matches the split request
//! path against the table — no per-endpoint string matching — answering
//! `405` (with an `Allow` header) when a path matches under another
//! method and `404` when nothing matches.
//!
//! ## `/v2` resource routes (current)
//!
//! | Route | Semantics |
//! |---|---|
//! | `GET /healthz` | liveness + profile count + registry generation + fleet role |
//! | `GET /metrics` | Prometheus text exposition (fleet series included) |
//! | `GET /v2/profiles` | the published snapshot's profiles |
//! | `GET /v2/profiles/{name}` | one profile, including its constraint document |
//! | `POST /v2/profiles/reload` | atomically re-publish the profile registry |
//! | `POST /v2/check` | batch violations (`?top=K` offenders) |
//! | `POST /v2/explain` | per-constraint breakdown + ExTuNe responsibility |
//! | `POST /v2/drift` | mean / p95 / max drift of a batch |
//! | `GET /v2/monitors` | every monitor's status snapshot |
//! | `GET /v2/monitors/{name}` | one monitor's status (`400` bad name, `404` absent) |
//! | `DELETE /v2/monitors/{name}` | drop a monitor (`400` reserved names) |
//! | `POST /v2/monitors/{name}/ingest` | route a columnar batch into the monitor |
//! | `GET /v2/monitors/{name}/proposal` | the pending resynthesis proposal |
//! | `POST /v2/monitors/{name}/proposal` | `?action=adopt` \| `discard` the proposal |
//! | `GET /v2/monitors/{name}/deltas` | fleet export: closed windows since `?since=` |
//! | `GET /v2/fleet/shards` | fleet role + shard membership/health |
//! | `POST /v2/fleet/shards/{index}/deltas` | push one shard's delta batch |
//! | `POST /v2/snapshot` | write a durable state snapshot now (needs `--state-dir`) |
//! | `GET /v2/trace` | flight-recorder spans + slowest-request table |
//! | `GET /v2/logs` | recent structured log lines |
//! | `GET /v2/self` | self-watch report |
//!
//! ## `/v1` aliases (deprecated, kept byte-compatible)
//!
//! Every `/v1` route still works and produces the same success bodies it
//! always did — they share handlers with `/v2` — but each response
//! carries `Deprecation: true` plus a `Link: <successor>;
//! rel="successor-version"` header naming its `/v2` replacement:
//! `/v1/monitor` → `/v2/monitors[/{name}]` (resource addressing instead
//! of `?monitor=`), `/v1/ingest` → `/v2/monitors/{name}/ingest`,
//! `/v1/reload` → `/v2/profiles/reload`, and the rest map 1:1.
//!
//! **Name semantics (shared by both versions):** a monitor name that
//! violates the grammar (empty, > 128 bytes, characters outside
//! `[a-zA-Z0-9_.-]`) is `400` everywhere; a well-formed name with no
//! monitor behind it is `404`; writes (ingest, delete) to reserved
//! `__`-prefixed names are `400`, while reads of them stay allowed (the
//! self-watch monitor is observable but not externally writable).
//!
//! Every non-2xx JSON response across both connection cores carries one
//! structured error envelope:
//! `{"error": {"code": "<slug>", "message": "<text>"}}` (see
//! [`Response::error`]).
//!
//! `POST` bodies are JSON objects carrying a columnar `"columns"` batch
//! (see [`crate::json`]) and an optional `"profile"` name — optional
//! because a snapshot with exactly one profile selects it implicitly; the
//! `?profile=` query parameter takes precedence when both are present.
//! Handlers evaluate against a pinned snapshot ([`Snapshot`]), so a
//! concurrent reload never disturbs an in-flight request.
//!
//! The batch endpoints additionally speak the length-prefixed binary
//! columnar encoding ([`crate::wire`]): a request body with
//! `Content-Type: application/x-ccsynth-columnar` **is** the batch (no
//! JSON envelope — `profile`, `threads`, … ride the query string), and
//! `/v2/check` answers in the same encoding when the `Accept` header
//! lists it (a one-column `violations` frame). Violations are
//! bit-identical across all four request/reply encoding combinations.

use crate::fleet::{FleetState, Role};
use crate::http::{Request, Response};
use crate::json::{self, frame_from_columns, num_array, obj, string};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::{ProfileEntry, ProfileRegistry, Snapshot};
use crate::selfwatch::{SelfWatchConfig, SelfWatchState, SELF_FEATURES, SELF_MONITOR};
use crate::state::Durability;
use cc_frame::DataFrame;
use cc_monitor::{
    validate_monitor_name, validate_monitor_name_grammar, ConfigState, DetectorKind, MonitorConfig,
    MonitorSet, MonitorStatus, OnlineMonitor, ShardDeltaBatch, WindowSpec, RESERVED_NAME_PREFIX,
};
use cc_obs::{Level, LogFilter, Logger};
use conformance::{mean_responsibility_from_plan, DriftAggregator};
use serde::Serialize;
use serde_json::Value;
use std::sync::Arc;

/// Everything a handler may need, borrowed from the server's shared
/// state. One struct instead of a parameter per subsystem: the router
/// fans a request out to handlers that each use a different slice.
pub struct RouteCtx<'a> {
    pub registry: &'a ProfileRegistry,
    pub monitors: &'a MonitorSet,
    pub metrics: &'a Metrics,
    pub durability: Option<&'a Durability>,
    /// The structured logger (`GET /v2/logs` reads its ring).
    pub logger: &'a Logger,
    /// The self-watch sampler config (`None` when self-watch is off).
    pub self_watch: Option<&'a SelfWatchConfig>,
    /// The self-watch sampler's runtime counters.
    pub self_state: &'a SelfWatchState,
    pub trace_buffer: usize,
    /// The fleet role/membership state (standalone unless configured).
    pub fleet: &'a FleetState,
}

/// One path segment of a route pattern.
enum Seg {
    /// Matches this literal segment exactly.
    Lit(&'static str),
    /// Matches any single segment and captures it.
    Param,
}

use Seg::{Lit, Param};

/// A handler: uniform signature so the table can hold plain fn pointers.
/// `params` are the captured `{…}` segments, in pattern order.
type Handler = fn(&Request, &RouteCtx<'_>, &[&str], u64) -> Response;

/// One row of the routing table.
struct RouteDef {
    method: &'static str,
    pattern: &'static [Seg],
    endpoint: Endpoint,
    handler: Handler,
    /// Set on `/v1` aliases: the `/v2` route advertised by the
    /// `Deprecation` + `Link: …; rel="successor-version"` headers.
    successor: Option<&'static str>,
}

const fn route_def(
    method: &'static str,
    pattern: &'static [Seg],
    endpoint: Endpoint,
    handler: Handler,
) -> RouteDef {
    RouteDef { method, pattern, endpoint, handler, successor: None }
}

const fn alias(
    method: &'static str,
    pattern: &'static [Seg],
    endpoint: Endpoint,
    handler: Handler,
    successor: &'static str,
) -> RouteDef {
    RouteDef { method, pattern, endpoint, handler, successor: Some(successor) }
}

/// The routing table. Literal rows precede parameter rows for the same
/// prefix (`/v2/profiles/reload` before `/v2/profiles/{name}`), so the
/// match is first-row-wins without any ambiguity.
const ROUTES: &[RouteDef] = &[
    // Unversioned operational endpoints.
    route_def("GET", &[Lit("healthz")], Endpoint::Healthz, h_healthz),
    route_def("GET", &[Lit("metrics")], Endpoint::Metrics, h_metrics),
    // /v2 resource routes.
    route_def("GET", &[Lit("v2"), Lit("profiles")], Endpoint::Profiles, h_profiles),
    route_def("POST", &[Lit("v2"), Lit("profiles"), Lit("reload")], Endpoint::Reload, h_reload),
    route_def("GET", &[Lit("v2"), Lit("profiles"), Param], Endpoint::Profiles, h_profile_detail),
    route_def("POST", &[Lit("v2"), Lit("check")], Endpoint::Check, h_check),
    route_def("POST", &[Lit("v2"), Lit("explain")], Endpoint::Explain, h_explain),
    route_def("POST", &[Lit("v2"), Lit("drift")], Endpoint::Drift, h_drift),
    route_def("GET", &[Lit("v2"), Lit("monitors")], Endpoint::Monitor, h_monitors_list),
    route_def("GET", &[Lit("v2"), Lit("monitors"), Param], Endpoint::Monitor, h_monitor_get),
    route_def("DELETE", &[Lit("v2"), Lit("monitors"), Param], Endpoint::Monitor, h_monitor_delete),
    route_def(
        "POST",
        &[Lit("v2"), Lit("monitors"), Param, Lit("ingest")],
        Endpoint::Ingest,
        h_monitor_ingest,
    ),
    route_def(
        "GET",
        &[Lit("v2"), Lit("monitors"), Param, Lit("proposal")],
        Endpoint::Proposal,
        h_proposal_get,
    ),
    route_def(
        "POST",
        &[Lit("v2"), Lit("monitors"), Param, Lit("proposal")],
        Endpoint::Proposal,
        h_proposal_post,
    ),
    route_def(
        "GET",
        &[Lit("v2"), Lit("monitors"), Param, Lit("deltas")],
        Endpoint::Deltas,
        h_deltas,
    ),
    route_def("GET", &[Lit("v2"), Lit("fleet"), Lit("shards")], Endpoint::Fleet, h_fleet_shards),
    route_def(
        "POST",
        &[Lit("v2"), Lit("fleet"), Lit("shards"), Param, Lit("deltas")],
        Endpoint::Fleet,
        h_fleet_push,
    ),
    route_def("POST", &[Lit("v2"), Lit("snapshot")], Endpoint::Snapshot, h_snapshot),
    route_def("GET", &[Lit("v2"), Lit("trace")], Endpoint::Trace, h_trace),
    route_def("GET", &[Lit("v2"), Lit("logs")], Endpoint::Logs, h_logs),
    route_def("GET", &[Lit("v2"), Lit("self")], Endpoint::SelfReport, h_self),
    // /v1 aliases: same handlers (byte-identical success bodies), plus
    // Deprecation/Link headers naming the successor route.
    alias("GET", &[Lit("v1"), Lit("profiles")], Endpoint::Profiles, h_profiles, "/v2/profiles"),
    alias("POST", &[Lit("v1"), Lit("check")], Endpoint::Check, h_check, "/v2/check"),
    alias("POST", &[Lit("v1"), Lit("explain")], Endpoint::Explain, h_explain, "/v2/explain"),
    alias("POST", &[Lit("v1"), Lit("drift")], Endpoint::Drift, h_drift, "/v2/drift"),
    alias(
        "POST",
        &[Lit("v1"), Lit("ingest")],
        Endpoint::Ingest,
        h_ingest_legacy,
        "/v2/monitors/{name}/ingest",
    ),
    alias(
        "GET",
        &[Lit("v1"), Lit("monitor")],
        Endpoint::Monitor,
        h_monitor_legacy_get,
        "/v2/monitors",
    ),
    alias(
        "DELETE",
        &[Lit("v1"), Lit("monitor")],
        Endpoint::Monitor,
        h_monitor_legacy_delete,
        "/v2/monitors/{name}",
    ),
    alias("POST", &[Lit("v1"), Lit("reload")], Endpoint::Reload, h_reload, "/v2/profiles/reload"),
    alias("POST", &[Lit("v1"), Lit("snapshot")], Endpoint::Snapshot, h_snapshot, "/v2/snapshot"),
    alias("GET", &[Lit("v1"), Lit("trace")], Endpoint::Trace, h_trace, "/v2/trace"),
    alias("GET", &[Lit("v1"), Lit("logs")], Endpoint::Logs, h_logs, "/v2/logs"),
    alias("GET", &[Lit("v1"), Lit("self")], Endpoint::SelfReport, h_self, "/v2/self"),
];

/// Matches one pattern against the split path, capturing `{…}` segments.
fn match_pattern<'a>(pattern: &[Seg], segs: &[&'a str]) -> Option<Vec<&'a str>> {
    if pattern.len() != segs.len() {
        return None;
    }
    let mut params = Vec::new();
    for (p, s) in pattern.iter().zip(segs) {
        match p {
            Seg::Lit(l) => {
                if l != s {
                    return None;
                }
            }
            Seg::Param => params.push(*s),
        }
    }
    Some(params)
}

/// Routes one request through the table. Never panics outward on bad
/// input — every failure maps to a 4xx/5xx response (the connection loop
/// additionally catches panics and answers 500). `trace_id` is the
/// per-request flight-recorder id resolved by the connection core (0
/// when tracing is off); handlers that spawn deeper pipeline work
/// (ingest) tag their spans with it.
pub fn route(req: &Request, ctx: &RouteCtx<'_>, trace_id: u64) -> (Endpoint, Response) {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    // Methods that DO serve this path, collected while scanning — they
    // become the 405's message and `Allow` header when no row matches
    // the request's own method.
    let mut allowed: Vec<&'static str> = Vec::new();
    for r in ROUTES {
        let Some(params) = match_pattern(r.pattern, &segs) else { continue };
        if r.method != req.method {
            if !allowed.contains(&r.method) {
                allowed.push(r.method);
            }
            continue;
        }
        let mut resp = (r.handler)(req, ctx, &params, trace_id);
        if let Some(successor) = r.successor {
            resp.set_header("deprecation", "true".to_owned());
            resp.set_header("link", format!("<{successor}>; rel=\"successor-version\""));
        }
        return (r.endpoint, resp);
    }
    if !allowed.is_empty() {
        let mut resp =
            Response::error(405, &format!("use {} for this endpoint", allowed.join(" or ")));
        resp.set_header("allow", allowed.join(", "));
        return (Endpoint::Other, resp);
    }
    (Endpoint::Other, Response::error(404, "no such endpoint"))
}

/// Ceiling on concurrently registered monitors — client-named state must
/// not grow without bound (see `ingest`).
pub const MAX_MONITORS: usize = 256;

// ---------------------------------------------------------------------
// Table adapters: uniform-signature wrappers over the handlers below.
// ---------------------------------------------------------------------

fn h_healthz(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    healthz(ctx)
}

fn h_metrics(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    metrics_text(ctx)
}

fn h_profiles(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    profiles(ctx.registry)
}

fn h_profile_detail(_req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    profile_detail(ctx.registry, p[0])
}

fn h_reload(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    reload(ctx.registry)
}

fn h_check(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    with_batch(req, ctx.registry, ctx.metrics, check)
}

fn h_explain(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    with_batch(req, ctx.registry, ctx.metrics, explain)
}

fn h_drift(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    with_batch(req, ctx.registry, ctx.metrics, drift)
}

fn h_ingest_legacy(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], trace_id: u64) -> Response {
    ingest(req, ctx, trace_id, None)
}

fn h_monitor_ingest(req: &Request, ctx: &RouteCtx<'_>, p: &[&str], trace_id: u64) -> Response {
    ingest(req, ctx, trace_id, Some(p[0]))
}

fn h_monitors_list(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    monitors_list(ctx)
}

fn h_monitor_legacy_get(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    match req.query_param("monitor") {
        Some(name) => monitor_get(ctx, name),
        None => monitors_list(ctx),
    }
}

fn h_monitor_get(_req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    monitor_get(ctx, p[0])
}

fn h_monitor_legacy_delete(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    let Some(name) = req.query_param("monitor") else {
        return Response::error(400, "name the monitor via ?monitor=");
    };
    monitor_delete(ctx.monitors, name)
}

fn h_monitor_delete(_req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    monitor_delete(ctx.monitors, p[0])
}

fn h_proposal_get(_req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    proposal_get(ctx, p[0])
}

fn h_proposal_post(req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    proposal_post(req, ctx, p[0])
}

fn h_deltas(req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    deltas_export(req, ctx, p[0])
}

fn h_fleet_shards(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    Response::json(&ctx.fleet.describe())
}

fn h_fleet_push(req: &Request, ctx: &RouteCtx<'_>, p: &[&str], _t: u64) -> Response {
    fleet_push(req, ctx, p[0])
}

fn h_snapshot(_req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    snapshot(ctx.registry, ctx.monitors, ctx.metrics, ctx.durability)
}

fn h_trace(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    trace(req, ctx.trace_buffer)
}

fn h_logs(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    logs(req, ctx.logger)
}

fn h_self(req: &Request, ctx: &RouteCtx<'_>, _p: &[&str], _t: u64) -> Response {
    self_report(req, ctx)
}

// ---------------------------------------------------------------------
// Handlers.
// ---------------------------------------------------------------------

fn healthz(ctx: &RouteCtx<'_>) -> Response {
    let snap = ctx.registry.snapshot();
    // The liveness answer stays 200 even when degraded — the process is
    // up and serving; `degraded` reports the self-watch detector's alarm
    // (always false when self-watch never synthesized a `__self` monitor).
    let degraded = ctx.monitors.get(SELF_MONITOR).is_some_and(|e| e.status().alarm);
    Response::json(&obj(vec![
        ("status", string(if degraded { "degraded" } else { "ok" })),
        ("degraded", Value::Bool(degraded)),
        ("role", string(ctx.fleet.role().name())),
        ("profiles", Value::Number(snap.entries().len() as f64)),
        ("generation", Value::Number(snap.generation() as f64)),
        ("uptime_seconds", Value::Number(ctx.metrics.uptime_seconds())),
        // Durability posture: is a state dir configured, and did this
        // boot restore a snapshot from it?
        ("durable", Value::Bool(ctx.durability.is_some())),
        ("restored", Value::Bool(ctx.durability.is_some_and(Durability::restored))),
    ]))
}

/// `POST /v2/snapshot`: write a durable state snapshot immediately.
/// `409` when the daemon was started without a state directory; `500`
/// when the write fails (the previous snapshot file stays intact).
fn snapshot(
    registry: &ProfileRegistry,
    monitors: &MonitorSet,
    metrics: &Metrics,
    durability: Option<&Durability>,
) -> Response {
    let Some(d) = durability else {
        return Response::error(409, "no state directory configured (start with --state-dir)");
    };
    match d.save(registry, monitors, metrics) {
        Ok(report) => Response::json(&obj(vec![
            ("path", string(report.path.display().to_string())),
            ("bytes", Value::Number(report.bytes as f64)),
            ("monitors", Value::Number(report.monitors as f64)),
            ("generation", Value::Number(report.generation as f64)),
        ])),
        Err(e) => Response::error(500, &format!("snapshot failed: {e}")),
    }
}

/// One profile's listing entry (shared by the list and detail routes so
/// the shapes agree).
fn profile_entry_value(e: &ProfileEntry) -> Value {
    obj(vec![
        ("name", string(&e.name)),
        ("attributes", Value::Array(e.profile.numeric_attributes.iter().map(string).collect())),
        ("constraints", Value::Number(e.plan.constraint_count() as f64)),
        ("partitions", Value::Number(e.profile.disjunctive.len() as f64)),
    ])
}

fn profiles(registry: &ProfileRegistry) -> Response {
    let snap = registry.snapshot();
    let list: Vec<Value> = snap.entries().iter().map(|e| profile_entry_value(e)).collect();
    Response::json(&obj(vec![
        ("generation", Value::Number(snap.generation() as f64)),
        ("profiles", Value::Array(list)),
    ]))
}

/// `GET /v2/profiles/{name}`: one profile's listing entry plus the full
/// constraint document (what `ccsynth profile --out` wrote).
fn profile_detail(registry: &ProfileRegistry, name: &str) -> Response {
    let snap = registry.snapshot();
    let Some(e) = snap.entries().iter().find(|e| e.name == name) else {
        return Response::error(404, &format!("no profile named '{name}'"));
    };
    let mut v = profile_entry_value(e);
    if let Value::Object(pairs) = &mut v {
        pairs.push(("generation".to_owned(), Value::Number(snap.generation() as f64)));
        pairs.push(("profile".to_owned(), e.profile.to_value()));
    }
    Response::json(&v)
}

fn reload(registry: &ProfileRegistry) -> Response {
    match registry.reload() {
        Ok(snap) => Response::json(&obj(vec![
            ("generation", Value::Number(snap.generation() as f64)),
            ("profiles", Value::Array(snap.entries().iter().map(|e| string(&e.name)).collect())),
        ])),
        // The old snapshot stays published — a conflict, not a crash.
        Err(e) => Response::error(409, &format!("reload rejected: {e}")),
    }
}

fn metrics_text(ctx: &RouteCtx<'_>) -> Response {
    let snap = ctx.registry.snapshot();
    let as_series = |(name, s): (String, Arc<MonitorStatus>)| crate::metrics::MonitorSeries {
        name,
        rows_ingested: s.rows_ingested,
        windows_closed: s.windows_closed,
        window_lag: s.window_lag,
        alarms_total: s.alarms_total,
        proposals_total: s.proposals_total,
        alarm: s.alarm,
    };
    let mut monitor_series: Vec<crate::metrics::MonitorSeries> =
        ctx.monitors.statuses().into_iter().map(as_series).collect();
    // A coordinator's merged monitors live in the fleet state, not the
    // local registry — same series family either way.
    monitor_series
        .extend(ctx.fleet.monitor_statuses().into_iter().map(|(n, s)| as_series((n, Arc::new(s)))));
    let mut text = ctx.metrics.render_prometheus(
        snap.entries().len(),
        snap.generation(),
        &ctx.registry.compile_counts(),
        &monitor_series,
    );
    ctx.fleet.render_prometheus(&mut text);
    Response::text(200, text)
}

/// `POST /v2/monitors/{name}/ingest` (and the `/v1/ingest` alias, where
/// the name rides `?monitor=` or the body): routes a columnar batch into
/// a named online monitor. The monitor is created on first use, bound to
/// the resolved profile (the `profile` query/body field, or the
/// snapshot's single profile) with the requested window geometry:
///
/// ```json
/// {"columns": {…}, "profile": "alpha",
///  "window": 512, "stride": 256, "detector": "cusum",
///  "calibrate": 8, "patience": 3, "aggregator": "mean"}
/// ```
///
/// Geometry/detector fields only matter on the creating call; later
/// calls ingest into the existing monitor as-is (`threads` is per-call:
/// it sizes the lock-free score phase, clamped to 1..=64). The response
/// carries a report for every window the batch closed plus the status
/// snapshot this commit published (alarm state, proposed-profile
/// generation, …). Concurrent connections may feed one monitor: batches
/// score in parallel and commit in admission order (`start_row` reports
/// where each batch landed), bit-identical to serialized ingest.
///
/// On a fleet shard, a created monitor's export log is armed so a
/// coordinator can pull its closed windows. On a coordinator, ingest is
/// `409`: the coordinator's monitors are merged views, fed by shard
/// deltas, never by direct rows.
fn ingest(req: &Request, ctx: &RouteCtx<'_>, trace_id: u64, path_name: Option<&str>) -> Response {
    if ctx.fleet.role() == Role::Coordinator {
        return Response::error(409, "this node is a coordinator; ingest into its shards instead");
    }
    let (registry, monitors, metrics) = (ctx.registry, ctx.monitors, ctx.metrics);
    let (frame, body) = match batch_payload(req, metrics) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let name = match path_name {
        Some(n) => n.to_owned(),
        None => match req
            .query_param("monitor")
            .or_else(|| json::get(&body, "monitor").and_then(json::as_str))
        {
            Some(n) if !n.is_empty() => n.to_owned(),
            _ => return Response::error(400, "body needs a 'monitor' name"),
        },
    };
    // Grammar + reserved-prefix check up front: it also shields the
    // server's own `__self` stream from external writes.
    if let Err(e) = validate_monitor_name(&name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    let (monitor, created) = match monitors.get(&name) {
        Some(m) => (m, false),
        None => {
            // First use: resolve the profile and build the monitor.
            // Monitor names come from untrusted clients and each monitor
            // holds real state (a compiled plan, open windows, a resynth
            // ring), so creation is capped — the same resource-exhaustion
            // posture as the accept-queue/body limits.
            if monitors.len() >= MAX_MONITORS {
                return Response::error(
                    409,
                    &format!(
                        "monitor registry is full ({MAX_MONITORS}); DELETE /v2/monitors/{{name}} to free one"
                    ),
                );
            }
            let snap: Arc<Snapshot> = registry.snapshot();
            let profile_name = req
                .query_param("profile")
                .or_else(|| json::get(&body, "profile").and_then(json::as_str));
            let Some(entry) = snap.select(profile_name) else {
                let msg = match profile_name {
                    Some(n) => format!("no profile named '{n}'"),
                    None => {
                        format!("{} profiles loaded; name one via 'profile'", snap.entries().len())
                    }
                };
                return Response::error(404, &msg);
            };
            let cfg = match monitor_config_from(req, &body) {
                Ok(c) => c,
                Err(e) => return Response::error(400, &e),
            };
            let profile = entry.profile.clone();
            // The `created` flag comes from get_or_create itself: a
            // concurrent creator may win the race, and only one response
            // may claim the creation (the loser's config was discarded).
            match monitors.get_or_create(&name, || OnlineMonitor::new(profile, cfg)) {
                Ok((m, created)) => (m, created),
                Err(e) => return Response::error(400, &e.to_string()),
            }
        }
    };
    if created && ctx.fleet.role() == Role::Shard {
        // Arm the fleet export log so the coordinator can pull this
        // monitor's closed windows (idempotent; losers of the creation
        // race skip it — the winner armed the cap already).
        let cap = ctx.fleet.export_cap();
        monitor.with_monitor(|m| m.set_export_cap(cap));
    }
    let threads = match field_usize(req, &body, "threads") {
        Ok(t) => t.unwrap_or(1).clamp(1, 64),
        Err(e) => return Response::error(400, &e),
    };
    // Two-phase pipeline: the batch scores lock-free through the entry's
    // published plan (optionally in parallel), then commits in admission
    // order under the short monitor lock. Concurrent connections feeding
    // one monitor serialize only the commit, and the interleaving is
    // bit-identical to serialized ingest.
    match monitor.ingest_traced(&frame, threads, trace_id) {
        Ok((report, status)) => {
            metrics.add_rows_checked(report.rows);
            Response::json(&obj(vec![
                ("monitor", string(&name)),
                ("created", Value::Bool(created)),
                // The committed profile generation, surfaced alongside the
                // nested status so clients can correlate trace events with
                // scorer swaps without digging into the status object.
                ("generation", Value::Number(status.generation as f64)),
                ("rows", Value::Number(report.rows as f64)),
                ("start_row", Value::Number(report.start_row as f64)),
                ("windows", report.windows.to_value()),
                ("alarm", Value::Bool(report.alarm)),
                ("status", status.to_value()),
            ]))
        }
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// An integer monitor/handler field: query parameter first (the only
/// channel binary-columnar requests have), then the JSON body.
fn field_usize(req: &Request, body: &Value, key: &str) -> Result<Option<usize>, String> {
    if let Some(s) = req.query_param(key) {
        return match s.parse() {
            Ok(v) => Ok(Some(v)),
            Err(_) => Err(format!("'{key}' must be a non-negative integer")),
        };
    }
    match json::get(body, key) {
        None => Ok(None),
        Some(v) => match json::as_usize(v) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("'{key}' must be a non-negative integer")),
        },
    }
}

/// A string monitor/handler field: query parameter first, then the JSON
/// body (a present-but-non-string body value reads as `""` so it still
/// hits the field's unknown-value error).
fn field_str<'a>(req: &'a Request, body: &'a Value, key: &str) -> Option<&'a str> {
    req.query_param(key).or_else(|| json::get(body, key).map(|v| json::as_str(v).unwrap_or("")))
}

/// Builds a [`MonitorConfig`] from the ingest request's optional fields
/// (query parameters or JSON body), on top of the crate defaults.
fn monitor_config_from(req: &Request, body: &Value) -> Result<MonitorConfig, String> {
    let mut cfg = MonitorConfig::default();
    let window = field_usize(req, body, "window")?.unwrap_or(cfg.spec.window());
    let stride = field_usize(req, body, "stride")?.unwrap_or(window);
    cfg.spec = WindowSpec::new(window, stride).map_err(|e| e.to_string())?;
    if let Some(spelled) = field_str(req, body, "detector") {
        cfg.detector = DetectorKind::parse(spelled)
            .ok_or_else(|| format!("unknown detector '{spelled}' (ewma, cusum, page-hinkley)"))?;
    }
    if let Some(spelled) = field_str(req, body, "aggregator") {
        cfg.aggregator = match spelled {
            "mean" => DriftAggregator::Mean,
            "max" => DriftAggregator::Max,
            other => return Err(format!("unknown aggregator '{other}' (mean, max)")),
        };
    }
    if let Some(v) = field_usize(req, body, "calibrate")? {
        cfg.calibration_windows = v;
    }
    if let Some(v) = field_usize(req, body, "patience")? {
        cfg.patience = v;
    }
    Ok(cfg)
}

/// `DELETE /v2/monitors/{name}` (and the `?monitor=` alias): drops a
/// monitor (and frees its slot under [`MAX_MONITORS`]). A name outside
/// the grammar is `400`, a well-formed absent name `404`; reserved
/// (`__`-prefixed) monitors belong to the server and cannot be deleted
/// externally (`400`).
fn monitor_delete(monitors: &MonitorSet, name: &str) -> Response {
    if let Err(e) = validate_monitor_name_grammar(name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    if name.starts_with(RESERVED_NAME_PREFIX) {
        return Response::error(
            400,
            &format!("'{name}' is reserved for the server's own monitors"),
        );
    }
    if !monitors.remove(name) {
        return Response::error(404, &format!("no monitor named '{name}'"));
    }
    Response::json(&obj(vec![
        ("deleted", string(name)),
        ("monitors", Value::Number(monitors.len() as f64)),
    ]))
}

/// A monitor status entry: the status snapshot with the name spliced in
/// front (shared by the single and list routes so the shapes agree).
fn status_entry(name: &str, status: &MonitorStatus) -> Value {
    let mut v = status.to_value();
    if let Value::Object(pairs) = &mut v {
        pairs.insert(0, ("monitor".to_owned(), string(name)));
    }
    v
}

/// `GET /v2/monitors/{name}` (and `GET /v1/monitor?monitor=`): one
/// monitor's status. Grammar violations are `400`; a well-formed name
/// with no monitor behind it is `404`. Reserved `__`-prefixed names stay
/// **readable** — observability of the server's own monitors is the
/// point — only writes to them are rejected.
fn monitor_get(ctx: &RouteCtx<'_>, name: &str) -> Response {
    if let Err(e) = validate_monitor_name_grammar(name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    // Published status — never waits behind an in-flight ingest.
    if let Some(m) = ctx.monitors.get(name) {
        return Response::json(&status_entry(name, &m.status()));
    }
    // A coordinator's merged monitors live in the fleet state.
    if let Some(s) = ctx.fleet.monitor_status(name) {
        return Response::json(&status_entry(name, &s));
    }
    Response::error(404, &format!("no monitor named '{name}'"))
}

/// `GET /v2/monitors` (and bare `GET /v1/monitor`): every monitor's
/// status — local ones plus, on a coordinator, the fleet-merged views.
fn monitors_list(ctx: &RouteCtx<'_>) -> Response {
    let mut list: Vec<Value> =
        ctx.monitors.statuses().iter().map(|(n, s)| status_entry(n, s)).collect();
    let fleet_statuses = ctx.fleet.monitor_statuses();
    let count = ctx.monitors.len() + fleet_statuses.len();
    list.extend(fleet_statuses.iter().map(|(n, s)| status_entry(n, s)));
    Response::json(&obj(vec![
        ("monitors", Value::Array(list)),
        ("count", Value::Number(count as f64)),
    ]))
}

/// The proposal resource body shared by GET and the POST outcomes.
fn proposal_body(name: &str, p: Option<&cc_monitor::ProposedProfile>) -> Response {
    let mut fields = vec![("monitor", string(name)), ("pending", Value::Bool(p.is_some()))];
    if let Some(p) = p {
        fields.push(("proposal", p.to_value()));
    }
    Response::json(&obj(fields))
}

/// `GET /v2/monitors/{name}/proposal`: the pending resynthesis proposal
/// (`pending: false` with no proposal — the resource exists whenever the
/// monitor does).
fn proposal_get(ctx: &RouteCtx<'_>, name: &str) -> Response {
    if let Err(e) = validate_monitor_name_grammar(name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    if let Some(e) = ctx.monitors.get(name) {
        let guard = e.lock();
        return proposal_body(name, guard.proposal());
    }
    if let Some(resp) =
        ctx.fleet.with_merged(name, |mm| proposal_body(name, mm.monitor().proposal()))
    {
        return resp;
    }
    Response::error(404, &format!("no monitor named '{name}'"))
}

/// `POST /v2/monitors/{name}/proposal?action=adopt|discard`: resolve the
/// pending proposal. Adoption swaps the monitored profile (generation
/// bump, detector re-calibration) through the entry's pipeline lock so
/// concurrent ingest serializes cleanly around the swap; `409` when no
/// proposal is pending. On a coordinator, adoption is rejected (`409`) —
/// the merged series re-derives from shard deltas, so the profile swap
/// must happen on the shards — while `discard` works anywhere.
fn proposal_post(req: &Request, ctx: &RouteCtx<'_>, name: &str) -> Response {
    if let Err(e) = validate_monitor_name_grammar(name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    let action = match req.query_param("action") {
        Some(a) => a.to_owned(),
        None => {
            let from_body = if req.body.is_empty() {
                None
            } else {
                std::str::from_utf8(&req.body)
                    .ok()
                    .and_then(|t| serde_json::from_str::<Value>(t).ok())
                    .and_then(|b| json::get(&b, "action").and_then(json::as_str).map(str::to_owned))
            };
            match from_body {
                Some(a) => a,
                None => {
                    return Response::error(
                        400,
                        "name an action via ?action= or a JSON body ('adopt' or 'discard')",
                    )
                }
            }
        }
    };
    if action != "adopt" && action != "discard" {
        return Response::error(400, &format!("unknown action '{action}' (adopt, discard)"));
    }
    if let Some(e) = ctx.monitors.get(name) {
        return if action == "adopt" {
            // with_monitor drains the entry's score pipeline and
            // republishes the scorer/status after the closure — exactly
            // what a generation swap needs.
            match e.with_monitor(|m| m.adopt_proposal()) {
                Some(generation) => Response::json(&obj(vec![
                    ("monitor", string(name)),
                    ("adopted", Value::Bool(true)),
                    ("generation", Value::Number(generation as f64)),
                ])),
                None => Response::error(409, "no pending proposal"),
            }
        } else if e.with_monitor(|m| m.discard_proposal()) {
            Response::json(&obj(vec![("monitor", string(name)), ("discarded", Value::Bool(true))]))
        } else {
            Response::error(409, "no pending proposal")
        };
    }
    if let Some(resp) = ctx.fleet.with_merged(name, |mm| {
        if action == "adopt" {
            return Response::error(
                409,
                "adopt proposals on the shards; the coordinator's merged series re-derives \
                 from their deltas",
            );
        }
        if mm.monitor_mut().discard_proposal() {
            Response::json(&obj(vec![("monitor", string(name)), ("discarded", Value::Bool(true))]))
        } else {
            Response::error(409, "no pending proposal")
        }
    }) {
        return resp;
    }
    Response::error(404, &format!("no monitor named '{name}'"))
}

/// `GET /v2/monitors/{name}/deltas?since=N`: the shard half of the fleet
/// catch-up protocol — closed windows from epoch `N` on, wrapped in the
/// `cc_state` envelope ([`cc_state::encode_envelope`]) so the payload
/// carries the snapshot format's magic/version/checksum. `409` when the
/// node is not a shard or the bounded export log no longer covers the
/// cursor (the coordinator marks the shard stale).
fn deltas_export(req: &Request, ctx: &RouteCtx<'_>, name: &str) -> Response {
    if let Err(e) = validate_monitor_name_grammar(name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    if ctx.fleet.role() != Role::Shard {
        return Response::error(409, "this node does not export deltas (start with --role shard)");
    }
    let since: u64 = match req.query_param("since") {
        None => 0,
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => return Response::error(400, "'since' must be a non-negative integer"),
        },
    };
    let Some(entry) = ctx.monitors.get(name) else {
        return Response::error(404, &format!("no monitor named '{name}'"));
    };
    // Read under the monitor lock (serialized with commits, never with
    // lock-free scoring) so the cursor arithmetic sees a settled log.
    let batch = {
        let m = entry.lock();
        m.deltas_since(since).map(|deltas| ShardDeltaBatch {
            monitor: name.to_owned(),
            generation: m.generation(),
            config: ConfigState::from_config(m.config()),
            profile: m.profile().clone(),
            since,
            next: since + deltas.len() as u64,
            windows_closed: m.windows_exported(),
            rows_ingested: m.rows_ingested(),
            deltas,
        })
    };
    match batch {
        Ok(batch) => match cc_state::encode_envelope(&batch) {
            Ok(text) => Response::json_text(text),
            Err(e) => Response::error(500, &format!("delta encoding failed: {e}")),
        },
        Err(e) => Response::error(409, &format!("delta export failed: {e}")),
    }
}

/// `POST /v2/fleet/shards/{index}/deltas`: push-path ingestion of one
/// shard's delta batch into the coordinator's merged monitors — the same
/// absorption the pull loop runs, for shards that prefer to push.
fn fleet_push(req: &Request, ctx: &RouteCtx<'_>, index: &str) -> Response {
    if ctx.fleet.role() != Role::Coordinator {
        return Response::error(
            409,
            "this node is not a coordinator (start with --role coordinator)",
        );
    }
    let Ok(shard): Result<usize, _> = index.parse() else {
        return Response::error(400, "shard index must be a non-negative integer");
    };
    if shard >= ctx.fleet.shard_count() {
        return Response::error(
            404,
            &format!("no shard {shard} (fleet has {} shard(s))", ctx.fleet.shard_count()),
        );
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let batch: ShardDeltaBatch = match cc_state::decode_envelope(text) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &format!("bad delta envelope: {e}")),
    };
    match ctx.fleet.absorb(shard, &batch) {
        Ok(report) => Response::json(&obj(vec![
            ("monitor", string(&report.monitor)),
            ("absorbed", Value::Number(report.absorbed as f64)),
            ("epochs_merged", Value::Number(report.epochs_merged as f64)),
            ("cursor", Value::Number(report.cursor as f64)),
        ])),
        Err(e) => Response::error(409, &e),
    }
}

/// `GET /v2/trace`: the flight recorder's recent spans plus a top-K
/// slowest-requests table with full phase breakdown.
///
/// Query parameters: `endpoint=` keeps only request-lifecycle spans for
/// that endpoint (and scopes the slow table to it), `monitor=` keeps only
/// ingest-pipeline spans for that monitor, `min_us=` drops spans shorter
/// than the threshold, `limit=` bounds the span list (default 256), and
/// `top=` sizes the slow-request table (default 10).
fn trace(req: &Request, trace_buffer: usize) -> Response {
    // Per-server gate AND process-global recorder: both must be on for
    // this daemon's requests to have recorded anything.
    let enabled = trace_buffer > 0 && cc_trace::enabled();
    let endpoint = req.query_param("endpoint");
    let monitor = req.query_param("monitor");
    let min_us: u64 = req.query_param("min_us").and_then(|s| s.parse().ok()).unwrap_or(0);
    let limit: usize =
        req.query_param("limit").and_then(|s| s.parse().ok()).unwrap_or(256).clamp(1, 4096);
    let top: usize =
        req.query_param("top").and_then(|s| s.parse().ok()).unwrap_or(10).clamp(1, 256);

    let all = cc_trace::snapshot(4096);

    // The slow-request table groups request-lifecycle spans by trace id;
    // a request qualifies once its `handle` span is recorded. Phases are
    // sequential, so their sum is the request's total in-server time.
    struct Slow {
        endpoint: String,
        start_us: u64,
        phases: [u64; 4],
        seen_handle: bool,
    }
    let mut by_trace: Vec<(u64, Slow)> = Vec::new();
    for s in &all {
        let Some(idx) = cc_trace::Phase::SERVER.iter().position(|&p| p == s.phase) else {
            continue;
        };
        if endpoint.is_some_and(|e| e != s.tag) {
            continue;
        }
        let slot = match by_trace.iter_mut().find(|(id, _)| *id == s.trace_id) {
            Some((_, slot)) => slot,
            None => {
                by_trace.push((
                    s.trace_id,
                    Slow {
                        endpoint: String::new(),
                        start_us: s.start_us,
                        phases: [0; 4],
                        seen_handle: false,
                    },
                ));
                &mut by_trace.last_mut().expect("just pushed").1
            }
        };
        slot.phases[idx] += s.dur_us;
        slot.start_us = slot.start_us.min(s.start_us);
        if s.phase == cc_trace::Phase::Handle {
            slot.seen_handle = true;
            slot.endpoint = s.tag.clone();
        }
    }
    let mut slow: Vec<(u64, Slow)> = by_trace.into_iter().filter(|(_, s)| s.seen_handle).collect();
    slow.sort_by_key(|(_, s)| std::cmp::Reverse(s.phases.iter().sum::<u64>()));
    slow.truncate(top);
    let slowest: Vec<Value> = slow
        .into_iter()
        .map(|(id, s)| {
            let breakdown: Vec<(&str, Value)> = cc_trace::Phase::SERVER
                .iter()
                .enumerate()
                .map(|(i, p)| (p.name(), Value::Number(s.phases[i] as f64)))
                .collect();
            obj(vec![
                ("trace", string(cc_trace::id_hex(id))),
                ("endpoint", string(&s.endpoint)),
                ("start_us", Value::Number(s.start_us as f64)),
                ("total_us", Value::Number(s.phases.iter().sum::<u64>() as f64)),
                ("phases", obj(breakdown)),
            ])
        })
        .collect();

    let filtered: Vec<&cc_trace::SpanRecord> = all
        .iter()
        .filter(|s| {
            if s.dur_us < min_us {
                return false;
            }
            if let Some(e) = endpoint {
                if !(cc_trace::Phase::SERVER.contains(&s.phase) && s.tag == e) {
                    return false;
                }
            }
            if let Some(m) = monitor {
                let monitor_phase = cc_trace::Phase::MONITOR.contains(&s.phase)
                    || s.phase == cc_trace::Phase::WindowClose;
                if !(monitor_phase && s.tag == m) {
                    return false;
                }
            }
            true
        })
        .collect();
    let spans: Vec<Value> = filtered
        .iter()
        .rev()
        .take(limit)
        .rev()
        .map(|s| {
            obj(vec![
                ("phase", string(s.phase.name())),
                ("trace", string(cc_trace::id_hex(s.trace_id))),
                ("tag", string(&s.tag)),
                ("extra", Value::Number(s.extra as f64)),
                ("start_us", Value::Number(s.start_us as f64)),
                ("dur_us", Value::Number(s.dur_us as f64)),
            ])
        })
        .collect();

    Response::json(&obj(vec![
        ("buffer", Value::Number(if enabled { cc_trace::buffer_capacity() } else { 0 } as f64)),
        ("enabled", Value::Bool(enabled)),
        ("matched", Value::Number(filtered.len() as f64)),
        ("spans", Value::Array(spans)),
        ("slowest", Value::Array(slowest)),
    ]))
}

/// `GET /v2/logs`: the structured log ring, oldest-first.
///
/// Query parameters: `level=` keeps records at or above a level
/// (`debug`/`info`/`warn`/`error`), `endpoint=` matches the record's
/// endpoint label exactly, `trace=` matches a hex trace id, `limit=`
/// bounds the answer (default 256, newest kept).
fn logs(req: &Request, logger: &Logger) -> Response {
    let mut filter = LogFilter::default();
    if let Some(s) = req.query_param("level") {
        match Level::parse(s) {
            Some(l) => filter.min_level = Some(l),
            None => {
                return Response::error(
                    400,
                    &format!("unknown level '{s}' (debug, info, warn, error)"),
                )
            }
        }
    }
    if let Some(e) = req.query_param("endpoint") {
        filter.endpoint = Some(e.to_owned());
    }
    if let Some(t) = req.query_param("trace") {
        match u64::from_str_radix(t, 16) {
            Ok(v) => filter.trace = Some(v),
            Err(_) => return Response::error(400, "'trace' must be a hex trace id"),
        }
    }
    filter.limit =
        req.query_param("limit").and_then(|s| s.parse().ok()).unwrap_or(256).clamp(1, 4096);
    let records = logger.recent(&filter);
    Response::json(&obj(vec![
        ("level", string(logger.level().name())),
        ("capacity", Value::Number(logger.capacity() as f64)),
        ("emitted", Value::Number(logger.emitted() as f64)),
        ("evicted", Value::Number(logger.evicted() as f64)),
        ("count", Value::Number(records.len() as f64)),
        ("logs", Value::Array(records.iter().map(|r| r.to_value()).collect())),
    ]))
}

/// `GET /v2/self`: the self-watch report — sampler configuration and
/// counters, the latest folded sample, the `__self` detector's status,
/// and a tail of its drift history (`?history=` entries, default 64).
fn self_report(req: &Request, ctx: &RouteCtx<'_>) -> Response {
    let entry = ctx.monitors.get(SELF_MONITOR);
    let (synthesized, calibrated, degraded, status) = match &entry {
        Some(e) => {
            let s = e.status();
            (true, s.calibrated, s.alarm, s.to_value())
        }
        None => (false, false, false, Value::Null),
    };
    let mut fields = vec![
        ("monitor", string(SELF_MONITOR)),
        ("enabled", Value::Bool(ctx.self_watch.is_some())),
        ("ticks", Value::Number(ctx.self_state.ticks() as f64)),
        ("synthesized", Value::Bool(synthesized)),
        ("calibrated", Value::Bool(calibrated)),
        ("degraded", Value::Bool(degraded)),
        ("synth_errors", Value::Number(ctx.self_state.synth_errors() as f64)),
        ("ingest_errors", Value::Number(ctx.self_state.ingest_errors() as f64)),
        ("features", Value::Array(SELF_FEATURES.iter().copied().map(string).collect())),
    ];
    if let Some(cfg) = ctx.self_watch {
        fields.push(("interval_ms", Value::Number(cfg.interval.as_secs_f64() * 1e3)));
        fields.push(("warmup", Value::Number(cfg.warmup as f64)));
        fields.push(("window", Value::Number(cfg.window as f64)));
        fields.push(("calibrate", Value::Number(cfg.calibration_windows as f64)));
        fields.push(("patience", Value::Number(cfg.patience as f64)));
    }
    if let Some(sample) = ctx.self_state.last_sample() {
        fields.push((
            "sample",
            obj(SELF_FEATURES
                .iter()
                .copied()
                .zip(sample)
                .map(|(n, v)| (n, Value::Number(v)))
                .collect()),
        ));
    }
    fields.push(("status", status));
    if let Some(e) = &entry {
        let keep: usize =
            req.query_param("history").and_then(|s| s.parse().ok()).unwrap_or(64).clamp(1, 4096);
        let drifts: Vec<f64> = e.lock().history().collect();
        let tail = &drifts[drifts.len().saturating_sub(keep)..];
        fields.push(("history", num_array(tail)));
    }
    Response::json(&obj(fields))
}

/// A parsed batch request: the resolved profile entry, the batch frame,
/// and the raw body value (for handler-specific fields).
struct Batch {
    entry: Arc<ProfileEntry>,
    frame: DataFrame,
    body: Value,
}

/// Decodes a batch request body into its frame by negotiated encoding.
///
/// Binary columnar (`Content-Type: application/x-ccsynth-columnar`)
/// deserializes straight into the SoA `DataFrame` layout the compiled
/// plans gather from — zero float parsing, zero per-row allocation —
/// and returns an empty JSON body (handler fields ride the query
/// string). Anything else takes the JSON `"columns"` path.
fn batch_payload(req: &Request, metrics: &Metrics) -> Result<(DataFrame, Value), Response> {
    if req.body_is_columnar() {
        metrics.record_wire(true);
        let frame = crate::wire::decode_frame(&req.body)
            .map_err(|e| Response::error(400, &format!("bad columnar frame: {e}")))?;
        return Ok((frame, Value::Object(Vec::new())));
    }
    metrics.record_wire(false);
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    let body: Value = serde_json::from_str(text)
        .map_err(|e| Response::error(400, &format!("body is not valid JSON: {e}")))?;
    let Some(columns) = json::get(&body, "columns") else {
        return Err(Response::error(400, "body needs a 'columns' object"));
    };
    let frame = frame_from_columns(columns).map_err(|e| Response::error(400, &e))?;
    Ok((frame, body))
}

/// Shared plumbing for the three batch endpoints: decode the body (JSON
/// or binary columnar), resolve the profile against a pinned snapshot,
/// count the rows into the metrics, then hand off.
fn with_batch(
    req: &Request,
    registry: &ProfileRegistry,
    metrics: &Metrics,
    handler: fn(&Request, Batch) -> Response,
) -> Response {
    let (frame, body) = match batch_payload(req, metrics) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let snap: Arc<Snapshot> = registry.snapshot();
    let name =
        req.query_param("profile").or_else(|| json::get(&body, "profile").and_then(json::as_str));
    let Some(entry) = snap.select(name) else {
        let msg = match name {
            Some(n) => format!("no profile named '{n}'"),
            None => format!("{} profiles loaded; name one via 'profile'", snap.entries().len()),
        };
        return Response::error(404, &msg);
    };
    let rows = frame.n_rows();
    let response = handler(req, Batch { entry: entry.clone(), frame, body });
    // Count rows only when they were actually scored — a 400 whose
    // columns never bound must not inflate the throughput counter.
    if response.status == 200 {
        metrics.add_rows_checked(rows);
    }
    response
}

/// `POST /v2/check`: per-tuple violations through the compiled plan —
/// bit-identical to a direct [`conformance::CompiledProfile::violations`]
/// call on the same frame (the shim's shortest-round-trip `f64` JSON
/// keeps it exact over the wire).
fn check(req: &Request, batch: Batch) -> Response {
    let threads = match field_usize(req, &batch.body, "threads") {
        Ok(t) => t.unwrap_or(1).clamp(1, 64),
        Err(e) => return Response::error(400, &e),
    };
    // An empty batch conforms trivially — and carries no type information
    // for its columns, so it must not reach plan binding.
    let violations = if batch.frame.n_rows() == 0 {
        Vec::new()
    } else {
        match batch.entry.plan.violations_parallel(&batch.frame, threads) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e.to_string()),
        }
    };
    // Binary reply when asked for: the violations plane as a one-column
    // columnar frame — same f64 bits as the JSON array, no formatting.
    if req.accepts_columnar() {
        return Response::columnar(crate::wire::encode_violations(&violations));
    }
    let n = violations.len();
    let mean = violations.iter().sum::<f64>() / n.max(1) as f64;
    let max = violations.iter().fold(0.0f64, |m, &v| m.max(v));
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(n as f64)),
        ("constraints", Value::Number(batch.entry.plan.constraint_count() as f64)),
        ("mean", Value::Number(mean)),
        ("max", Value::Number(max)),
        ("violations", num_array(&violations)),
    ];
    let threshold = req
        .query_param("threshold")
        .and_then(|t| t.parse().ok())
        .or_else(|| json::get(&batch.body, "threshold").and_then(json::as_f64));
    if let Some(threshold) = threshold {
        let n_unsafe = violations.iter().filter(|&&v| v > threshold).count();
        fields.push(("unsafe", Value::Number(n_unsafe as f64)));
    }
    let top = req
        .query_param("top")
        .and_then(|t| t.parse().ok())
        .or_else(|| json::get(&batch.body, "top").and_then(json::as_usize))
        .unwrap_or(0);
    if top > 0 {
        fields.push(("top", top_offenders(&violations, top)));
    }
    Response::json(&obj(fields))
}

/// The `k` worst rows as `[{row, violation}]`, worst first — the same
/// [`conformance::top_k_desc`] ranking the CLI's `check --top` uses.
fn top_offenders(violations: &[f64], k: usize) -> Value {
    Value::Array(
        conformance::top_k_desc(violations, k)
            .into_iter()
            .map(|i| {
                obj(vec![
                    ("row", Value::Number(i as f64)),
                    ("violation", Value::Number(violations[i])),
                ])
            })
            .collect(),
    )
}

/// `POST /v2/explain`: per-constraint mean contributions, plus ExTuNe
/// attribute responsibility when the request supplies training means
/// (`"means": {"attr": value, …}` — the daemon holds compiled plans, not
/// training frames).
fn explain(_req: &Request, batch: Batch) -> Response {
    let plan = &batch.entry.plan;
    // Empty batch: nothing to explain (and no column types to bind).
    if batch.frame.n_rows() == 0 {
        return Response::json(&obj(vec![
            ("profile", string(&batch.entry.name)),
            ("rows", Value::Number(0.0)),
            ("breakdown", Value::Array(Vec::new())),
        ]));
    }
    let breakdown = match conformance::breakdown_from_plan(plan, &batch.frame) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let breakdown_json = Value::Array(
        breakdown
            .iter()
            .map(|c| obj(vec![("label", string(&c.label)), ("score", Value::Number(c.score))]))
            .collect(),
    );
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(batch.frame.n_rows() as f64)),
        ("breakdown", breakdown_json),
    ];
    if let Some(means) = json::get(&batch.body, "means") {
        let mut train_means = Vec::with_capacity(plan.attributes().len());
        for a in plan.attributes() {
            match json::get(means, a).and_then(json::as_f64) {
                Some(m) => train_means.push(m),
                None => {
                    return Response::error(400, &format!("'means' is missing attribute '{a}'"))
                }
            }
        }
        let ranked = match mean_responsibility_from_plan(plan, &train_means, &batch.frame) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        fields.push((
            "responsibility",
            Value::Array(
                ranked
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("attribute", string(&r.attribute)),
                            ("score", Value::Number(r.score)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Response::json(&obj(fields))
}

/// `POST /v2/drift`: the CLI's three aggregators over one batch, against
/// the cached plan (no recompilation per request).
fn drift(_req: &Request, batch: Batch) -> Response {
    let plan = &batch.entry.plan;
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(batch.frame.n_rows() as f64)),
    ];
    for (label, agg) in [
        ("mean", DriftAggregator::Mean),
        ("p95", DriftAggregator::Quantile(0.95)),
        ("max", DriftAggregator::Max),
    ] {
        // Empty batch: drift 0 by the aggregators' empty-input
        // convention, without binding untyped columns.
        if batch.frame.n_rows() == 0 {
            fields.push((label, Value::Number(0.0)));
            continue;
        }
        match agg.aggregate_compiled(plan, &batch.frame) {
            Ok(d) => fields.push((label, Value::Number(d))),
            Err(e) => return Response::error(400, &e.to_string()),
        }
    }
    Response::json(&obj(fields))
}
