//! Endpoint routing and handlers.
//!
//! | Route | Semantics |
//! |---|---|
//! | `GET /healthz` | liveness + profile count + registry generation |
//! | `GET /v1/profiles` | the published snapshot's profiles |
//! | `POST /v1/check` | batch violations (`?top=K` offenders) |
//! | `POST /v1/explain` | per-constraint breakdown + ExTuNe responsibility |
//! | `POST /v1/drift` | mean / p95 / max drift of a batch |
//! | `POST /v1/reload` | atomically re-publish the profile registry |
//! | `GET /metrics` | Prometheus text exposition |
//!
//! `POST` bodies are JSON objects carrying a columnar `"columns"` batch
//! (see [`crate::json`]) and an optional `"profile"` name — optional
//! because a snapshot with exactly one profile selects it implicitly; the
//! `?profile=` query parameter takes precedence when both are present.
//! Handlers evaluate against a pinned snapshot ([`Snapshot`]), so a
//! concurrent reload never disturbs an in-flight request.

use crate::http::{Request, Response};
use crate::json::{self, frame_from_columns, num_array, obj, string};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::{ProfileEntry, ProfileRegistry, Snapshot};
use cc_frame::DataFrame;
use conformance::{mean_responsibility_from_plan, DriftAggregator};
use serde_json::Value;
use std::sync::Arc;

/// Routes one request. Never panics outward on bad input — every failure
/// maps to a 4xx/5xx response (the connection loop additionally catches
/// panics and answers 500).
pub fn route(req: &Request, registry: &ProfileRegistry, metrics: &Metrics) -> (Endpoint, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (Endpoint::Healthz, healthz(registry)),
        ("GET", "/v1/profiles") => (Endpoint::Profiles, profiles(registry)),
        ("POST", "/v1/check") => (Endpoint::Check, with_batch(req, registry, metrics, check)),
        ("POST", "/v1/explain") => (Endpoint::Explain, with_batch(req, registry, metrics, explain)),
        ("POST", "/v1/drift") => (Endpoint::Drift, with_batch(req, registry, metrics, drift)),
        ("POST", "/v1/reload") => (Endpoint::Reload, reload(registry)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics_text(registry, metrics)),
        (_, "/healthz" | "/v1/profiles" | "/metrics") => {
            (Endpoint::Other, Response::error(405, "use GET for this endpoint"))
        }
        (_, "/v1/check" | "/v1/explain" | "/v1/drift" | "/v1/reload") => {
            (Endpoint::Other, Response::error(405, "use POST for this endpoint"))
        }
        _ => (Endpoint::Other, Response::error(404, "no such endpoint")),
    }
}

fn healthz(registry: &ProfileRegistry) -> Response {
    let snap = registry.snapshot();
    Response::json(&obj(vec![
        ("status", string("ok")),
        ("profiles", Value::Number(snap.entries().len() as f64)),
        ("generation", Value::Number(snap.generation() as f64)),
    ]))
}

fn profiles(registry: &ProfileRegistry) -> Response {
    let snap = registry.snapshot();
    let list: Vec<Value> = snap
        .entries()
        .iter()
        .map(|e| {
            obj(vec![
                ("name", string(&e.name)),
                (
                    "attributes",
                    Value::Array(e.profile.numeric_attributes.iter().map(string).collect()),
                ),
                ("constraints", Value::Number(e.plan.constraint_count() as f64)),
                ("partitions", Value::Number(e.profile.disjunctive.len() as f64)),
            ])
        })
        .collect();
    Response::json(&obj(vec![
        ("generation", Value::Number(snap.generation() as f64)),
        ("profiles", Value::Array(list)),
    ]))
}

fn reload(registry: &ProfileRegistry) -> Response {
    match registry.reload() {
        Ok(snap) => Response::json(&obj(vec![
            ("generation", Value::Number(snap.generation() as f64)),
            ("profiles", Value::Array(snap.entries().iter().map(|e| string(&e.name)).collect())),
        ])),
        // The old snapshot stays published — a conflict, not a crash.
        Err(e) => Response::error(409, &format!("reload rejected: {e}")),
    }
}

fn metrics_text(registry: &ProfileRegistry, metrics: &Metrics) -> Response {
    let snap = registry.snapshot();
    Response::text(
        200,
        metrics.render_prometheus(
            snap.entries().len(),
            snap.generation(),
            &registry.compile_counts(),
        ),
    )
}

/// A parsed batch request: the resolved profile entry, the batch frame,
/// and the raw body value (for handler-specific fields).
struct Batch {
    entry: Arc<ProfileEntry>,
    frame: DataFrame,
    body: Value,
}

/// Shared plumbing for the three batch endpoints: parse the JSON body,
/// build the frame, resolve the profile against a pinned snapshot, count
/// the rows into the metrics, then hand off.
fn with_batch(
    req: &Request,
    registry: &ProfileRegistry,
    metrics: &Metrics,
    handler: fn(&Request, Batch) -> Response,
) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let body: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
    };
    let Some(columns) = json::get(&body, "columns") else {
        return Response::error(400, "body needs a 'columns' object");
    };
    let frame = match frame_from_columns(columns) {
        Ok(f) => f,
        Err(e) => return Response::error(400, &e),
    };
    let snap: Arc<Snapshot> = registry.snapshot();
    let name =
        req.query_param("profile").or_else(|| json::get(&body, "profile").and_then(json::as_str));
    let Some(entry) = snap.select(name) else {
        let msg = match name {
            Some(n) => format!("no profile named '{n}'"),
            None => format!("{} profiles loaded; name one via 'profile'", snap.entries().len()),
        };
        return Response::error(404, &msg);
    };
    let rows = frame.n_rows();
    let response = handler(req, Batch { entry: entry.clone(), frame, body });
    // Count rows only when they were actually scored — a 400 whose
    // columns never bound must not inflate the throughput counter.
    if response.status == 200 {
        metrics.add_rows_checked(rows);
    }
    response
}

/// `POST /v1/check`: per-tuple violations through the compiled plan —
/// bit-identical to a direct [`conformance::CompiledProfile::violations`]
/// call on the same frame (the shim's shortest-round-trip `f64` JSON
/// keeps it exact over the wire).
fn check(req: &Request, batch: Batch) -> Response {
    let threads =
        json::get(&batch.body, "threads").and_then(json::as_usize).unwrap_or(1).clamp(1, 64);
    // An empty batch conforms trivially — and carries no type information
    // for its columns, so it must not reach plan binding.
    let violations = if batch.frame.n_rows() == 0 {
        Vec::new()
    } else {
        match batch.entry.plan.violations_parallel(&batch.frame, threads) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e.to_string()),
        }
    };
    let n = violations.len();
    let mean = violations.iter().sum::<f64>() / n.max(1) as f64;
    let max = violations.iter().fold(0.0f64, |m, &v| m.max(v));
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(n as f64)),
        ("constraints", Value::Number(batch.entry.plan.constraint_count() as f64)),
        ("mean", Value::Number(mean)),
        ("max", Value::Number(max)),
        ("violations", num_array(&violations)),
    ];
    if let Some(threshold) = json::get(&batch.body, "threshold").and_then(json::as_f64) {
        let n_unsafe = violations.iter().filter(|&&v| v > threshold).count();
        fields.push(("unsafe", Value::Number(n_unsafe as f64)));
    }
    let top = req
        .query_param("top")
        .and_then(|t| t.parse().ok())
        .or_else(|| json::get(&batch.body, "top").and_then(json::as_usize))
        .unwrap_or(0);
    if top > 0 {
        fields.push(("top", top_offenders(&violations, top)));
    }
    Response::json(&obj(fields))
}

/// The `k` worst rows as `[{row, violation}]`, worst first — the same
/// [`conformance::top_k_desc`] ranking the CLI's `check --top` uses.
fn top_offenders(violations: &[f64], k: usize) -> Value {
    Value::Array(
        conformance::top_k_desc(violations, k)
            .into_iter()
            .map(|i| {
                obj(vec![
                    ("row", Value::Number(i as f64)),
                    ("violation", Value::Number(violations[i])),
                ])
            })
            .collect(),
    )
}

/// `POST /v1/explain`: per-constraint mean contributions, plus ExTuNe
/// attribute responsibility when the request supplies training means
/// (`"means": {"attr": value, …}` — the daemon holds compiled plans, not
/// training frames).
fn explain(_req: &Request, batch: Batch) -> Response {
    let plan = &batch.entry.plan;
    // Empty batch: nothing to explain (and no column types to bind).
    if batch.frame.n_rows() == 0 {
        return Response::json(&obj(vec![
            ("profile", string(&batch.entry.name)),
            ("rows", Value::Number(0.0)),
            ("breakdown", Value::Array(Vec::new())),
        ]));
    }
    let breakdown = match conformance::breakdown_from_plan(plan, &batch.frame) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let breakdown_json = Value::Array(
        breakdown
            .iter()
            .map(|c| obj(vec![("label", string(&c.label)), ("score", Value::Number(c.score))]))
            .collect(),
    );
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(batch.frame.n_rows() as f64)),
        ("breakdown", breakdown_json),
    ];
    if let Some(means) = json::get(&batch.body, "means") {
        let mut train_means = Vec::with_capacity(plan.attributes().len());
        for a in plan.attributes() {
            match json::get(means, a).and_then(json::as_f64) {
                Some(m) => train_means.push(m),
                None => {
                    return Response::error(400, &format!("'means' is missing attribute '{a}'"))
                }
            }
        }
        let ranked = match mean_responsibility_from_plan(plan, &train_means, &batch.frame) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        fields.push((
            "responsibility",
            Value::Array(
                ranked
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("attribute", string(&r.attribute)),
                            ("score", Value::Number(r.score)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Response::json(&obj(fields))
}

/// `POST /v1/drift`: the CLI's three aggregators over one batch, against
/// the cached plan (no recompilation per request).
fn drift(_req: &Request, batch: Batch) -> Response {
    let plan = &batch.entry.plan;
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(batch.frame.n_rows() as f64)),
    ];
    for (label, agg) in [
        ("mean", DriftAggregator::Mean),
        ("p95", DriftAggregator::Quantile(0.95)),
        ("max", DriftAggregator::Max),
    ] {
        // Empty batch: drift 0 by the aggregators' empty-input
        // convention, without binding untyped columns.
        if batch.frame.n_rows() == 0 {
            fields.push((label, Value::Number(0.0)));
            continue;
        }
        match agg.aggregate_compiled(plan, &batch.frame) {
            Ok(d) => fields.push((label, Value::Number(d))),
            Err(e) => return Response::error(400, &e.to_string()),
        }
    }
    Response::json(&obj(fields))
}
