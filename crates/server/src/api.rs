//! Endpoint routing and handlers.
//!
//! | Route | Semantics |
//! |---|---|
//! | `GET /healthz` | liveness + profile count + registry generation |
//! | `GET /v1/profiles` | the published snapshot's profiles |
//! | `POST /v1/check` | batch violations (`?top=K` offenders) |
//! | `POST /v1/explain` | per-constraint breakdown + ExTuNe responsibility |
//! | `POST /v1/drift` | mean / p95 / max drift of a batch |
//! | `POST /v1/ingest` | route a columnar batch into a named online monitor |
//! | `GET /v1/monitor` | monitor snapshots: window stats, alarm state, proposals |
//! | `DELETE /v1/monitor` | drop a named monitor |
//! | `POST /v1/reload` | atomically re-publish the profile registry |
//! | `POST /v1/snapshot` | write a durable state snapshot now (needs `--state-dir`) |
//! | `GET /v1/logs` | recent structured log lines (level/endpoint/trace filters) |
//! | `GET /v1/self` | self-watch report: sampler state, `__self` detector, drift history |
//! | `GET /metrics` | Prometheus text exposition |
//!
//! `POST` bodies are JSON objects carrying a columnar `"columns"` batch
//! (see [`crate::json`]) and an optional `"profile"` name — optional
//! because a snapshot with exactly one profile selects it implicitly; the
//! `?profile=` query parameter takes precedence when both are present.
//! Handlers evaluate against a pinned snapshot ([`Snapshot`]), so a
//! concurrent reload never disturbs an in-flight request.
//!
//! The batch endpoints additionally speak the length-prefixed binary
//! columnar encoding ([`crate::wire`]): a request body with
//! `Content-Type: application/x-ccsynth-columnar` **is** the batch (no
//! JSON envelope — `profile`, `threads`, … ride the query string), and
//! `/v1/check` answers in the same encoding when the `Accept` header
//! lists it (a one-column `violations` frame). Violations are
//! bit-identical across all four request/reply encoding combinations.

use crate::http::{Request, Response};
use crate::json::{self, frame_from_columns, num_array, obj, string};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::{ProfileEntry, ProfileRegistry, Snapshot};
use crate::selfwatch::{SelfWatchConfig, SelfWatchState, SELF_FEATURES, SELF_MONITOR};
use crate::state::Durability;
use cc_frame::DataFrame;
use cc_monitor::{
    validate_monitor_name, DetectorKind, MonitorConfig, MonitorSet, MonitorStatus, OnlineMonitor,
    WindowSpec, RESERVED_NAME_PREFIX,
};
use cc_obs::{Level, LogFilter, Logger};
use conformance::{mean_responsibility_from_plan, DriftAggregator};
use serde::Serialize;
use serde_json::Value;
use std::sync::Arc;

/// Everything a handler may need, borrowed from the server's shared
/// state. One struct instead of a parameter per subsystem: the router
/// fans a request out to handlers that each use a different slice.
pub struct RouteCtx<'a> {
    pub registry: &'a ProfileRegistry,
    pub monitors: &'a MonitorSet,
    pub metrics: &'a Metrics,
    pub durability: Option<&'a Durability>,
    /// The structured logger (`GET /v1/logs` reads its ring).
    pub logger: &'a Logger,
    /// The self-watch sampler config (`None` when self-watch is off).
    pub self_watch: Option<&'a SelfWatchConfig>,
    /// The self-watch sampler's runtime counters.
    pub self_state: &'a SelfWatchState,
    pub trace_buffer: usize,
}

/// Routes one request. Never panics outward on bad input — every failure
/// maps to a 4xx/5xx response (the connection loop additionally catches
/// panics and answers 500). `trace_id` is the per-request flight-recorder
/// id resolved by the connection core (0 when tracing is off); handlers
/// that spawn deeper pipeline work (ingest) tag their spans with it.
pub fn route(req: &Request, ctx: &RouteCtx<'_>, trace_id: u64) -> (Endpoint, Response) {
    let RouteCtx { registry, monitors, metrics, durability, .. } = *ctx;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            (Endpoint::Healthz, healthz(registry, monitors, metrics, durability))
        }
        ("GET", "/v1/profiles") => (Endpoint::Profiles, profiles(registry)),
        ("POST", "/v1/check") => (Endpoint::Check, with_batch(req, registry, metrics, check)),
        ("POST", "/v1/explain") => (Endpoint::Explain, with_batch(req, registry, metrics, explain)),
        ("POST", "/v1/drift") => (Endpoint::Drift, with_batch(req, registry, metrics, drift)),
        ("POST", "/v1/ingest") => {
            (Endpoint::Ingest, ingest(req, registry, monitors, metrics, trace_id))
        }
        ("GET", "/v1/monitor") => (Endpoint::Monitor, monitor_status(req, monitors)),
        ("DELETE", "/v1/monitor") => (Endpoint::Monitor, monitor_delete(req, monitors)),
        ("POST", "/v1/reload") => (Endpoint::Reload, reload(registry)),
        ("POST", "/v1/snapshot") => {
            (Endpoint::Snapshot, snapshot(registry, monitors, metrics, durability))
        }
        ("GET", "/v1/trace") => (Endpoint::Trace, trace(req, ctx.trace_buffer)),
        ("GET", "/v1/logs") => (Endpoint::Logs, logs(req, ctx.logger)),
        ("GET", "/v1/self") => (Endpoint::SelfReport, self_report(req, ctx)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics_text(registry, monitors, metrics)),
        (_, "/healthz" | "/v1/profiles" | "/v1/trace" | "/v1/logs" | "/v1/self" | "/metrics") => {
            (Endpoint::Other, Response::error(405, "use GET for this endpoint"))
        }
        (_, "/v1/monitor") => {
            (Endpoint::Other, Response::error(405, "use GET or DELETE for this endpoint"))
        }
        (
            _,
            "/v1/check" | "/v1/explain" | "/v1/drift" | "/v1/reload" | "/v1/ingest"
            | "/v1/snapshot",
        ) => (Endpoint::Other, Response::error(405, "use POST for this endpoint")),
        _ => (Endpoint::Other, Response::error(404, "no such endpoint")),
    }
}

/// Ceiling on concurrently registered monitors — client-named state must
/// not grow without bound (see `ingest`).
pub const MAX_MONITORS: usize = 256;

fn healthz(
    registry: &ProfileRegistry,
    monitors: &MonitorSet,
    metrics: &Metrics,
    durability: Option<&Durability>,
) -> Response {
    let snap = registry.snapshot();
    // The liveness answer stays 200 even when degraded — the process is
    // up and serving; `degraded` reports the self-watch detector's alarm
    // (always false when self-watch never synthesized a `__self` monitor).
    let degraded = monitors.get(SELF_MONITOR).is_some_and(|e| e.status().alarm);
    Response::json(&obj(vec![
        ("status", string(if degraded { "degraded" } else { "ok" })),
        ("degraded", Value::Bool(degraded)),
        ("profiles", Value::Number(snap.entries().len() as f64)),
        ("generation", Value::Number(snap.generation() as f64)),
        ("uptime_seconds", Value::Number(metrics.uptime_seconds())),
        // Durability posture: is a state dir configured, and did this
        // boot restore a snapshot from it?
        ("durable", Value::Bool(durability.is_some())),
        ("restored", Value::Bool(durability.is_some_and(Durability::restored))),
    ]))
}

/// `POST /v1/snapshot`: write a durable state snapshot immediately.
/// `409` when the daemon was started without a state directory; `500`
/// when the write fails (the previous snapshot file stays intact).
fn snapshot(
    registry: &ProfileRegistry,
    monitors: &MonitorSet,
    metrics: &Metrics,
    durability: Option<&Durability>,
) -> Response {
    let Some(d) = durability else {
        return Response::error(409, "no state directory configured (start with --state-dir)");
    };
    match d.save(registry, monitors, metrics) {
        Ok(report) => Response::json(&obj(vec![
            ("path", string(report.path.display().to_string())),
            ("bytes", Value::Number(report.bytes as f64)),
            ("monitors", Value::Number(report.monitors as f64)),
            ("generation", Value::Number(report.generation as f64)),
        ])),
        Err(e) => Response::error(500, &format!("snapshot failed: {e}")),
    }
}

fn profiles(registry: &ProfileRegistry) -> Response {
    let snap = registry.snapshot();
    let list: Vec<Value> = snap
        .entries()
        .iter()
        .map(|e| {
            obj(vec![
                ("name", string(&e.name)),
                (
                    "attributes",
                    Value::Array(e.profile.numeric_attributes.iter().map(string).collect()),
                ),
                ("constraints", Value::Number(e.plan.constraint_count() as f64)),
                ("partitions", Value::Number(e.profile.disjunctive.len() as f64)),
            ])
        })
        .collect();
    Response::json(&obj(vec![
        ("generation", Value::Number(snap.generation() as f64)),
        ("profiles", Value::Array(list)),
    ]))
}

fn reload(registry: &ProfileRegistry) -> Response {
    match registry.reload() {
        Ok(snap) => Response::json(&obj(vec![
            ("generation", Value::Number(snap.generation() as f64)),
            ("profiles", Value::Array(snap.entries().iter().map(|e| string(&e.name)).collect())),
        ])),
        // The old snapshot stays published — a conflict, not a crash.
        Err(e) => Response::error(409, &format!("reload rejected: {e}")),
    }
}

fn metrics_text(registry: &ProfileRegistry, monitors: &MonitorSet, metrics: &Metrics) -> Response {
    let snap = registry.snapshot();
    let monitor_series: Vec<crate::metrics::MonitorSeries> = monitors
        .statuses()
        .into_iter()
        .map(|(name, s)| crate::metrics::MonitorSeries {
            name,
            rows_ingested: s.rows_ingested,
            windows_closed: s.windows_closed,
            window_lag: s.window_lag,
            alarms_total: s.alarms_total,
            proposals_total: s.proposals_total,
            alarm: s.alarm,
        })
        .collect();
    Response::text(
        200,
        metrics.render_prometheus(
            snap.entries().len(),
            snap.generation(),
            &registry.compile_counts(),
            &monitor_series,
        ),
    )
}

/// `POST /v1/ingest`: routes a columnar batch into a named online
/// monitor. The monitor is created on first use, bound to the resolved
/// profile (the `profile` query/body field, or the snapshot's single
/// profile) with the requested window geometry:
///
/// ```json
/// {"monitor": "orders", "columns": {…}, "profile": "alpha",
///  "window": 512, "stride": 256, "detector": "cusum",
///  "calibrate": 8, "patience": 3, "aggregator": "mean"}
/// ```
///
/// Geometry/detector fields only matter on the creating call; later
/// calls ingest into the existing monitor as-is (`threads` is per-call:
/// it sizes the lock-free score phase, clamped to 1..=64). The response
/// carries a report for every window the batch closed plus the status
/// snapshot this commit published (alarm state, proposed-profile
/// generation, …). Concurrent connections may feed one monitor: batches
/// score in parallel and commit in admission order (`start_row` reports
/// where each batch landed), bit-identical to serialized ingest.
fn ingest(
    req: &Request,
    registry: &ProfileRegistry,
    monitors: &MonitorSet,
    metrics: &Metrics,
    trace_id: u64,
) -> Response {
    let (frame, body) = match batch_payload(req, metrics) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let name = match req
        .query_param("monitor")
        .or_else(|| json::get(&body, "monitor").and_then(json::as_str))
    {
        Some(n) if !n.is_empty() => n.to_owned(),
        _ => return Response::error(400, "body needs a 'monitor' name"),
    };
    // Grammar + reserved-prefix check up front: it also shields the
    // server's own `__self` stream from external writes.
    if let Err(e) = validate_monitor_name(&name) {
        return Response::error(400, &format!("bad monitor name: {e}"));
    }
    let (monitor, created) = match monitors.get(&name) {
        Some(m) => (m, false),
        None => {
            // First use: resolve the profile and build the monitor.
            // Monitor names come from untrusted clients and each monitor
            // holds real state (a compiled plan, open windows, a resynth
            // ring), so creation is capped — the same resource-exhaustion
            // posture as the accept-queue/body limits.
            if monitors.len() >= MAX_MONITORS {
                return Response::error(
                    409,
                    &format!(
                        "monitor registry is full ({MAX_MONITORS}); DELETE /v1/monitor?monitor=… to free one"
                    ),
                );
            }
            let snap: Arc<Snapshot> = registry.snapshot();
            let profile_name = req
                .query_param("profile")
                .or_else(|| json::get(&body, "profile").and_then(json::as_str));
            let Some(entry) = snap.select(profile_name) else {
                let msg = match profile_name {
                    Some(n) => format!("no profile named '{n}'"),
                    None => {
                        format!("{} profiles loaded; name one via 'profile'", snap.entries().len())
                    }
                };
                return Response::error(404, &msg);
            };
            let cfg = match monitor_config_from(req, &body) {
                Ok(c) => c,
                Err(e) => return Response::error(400, &e),
            };
            let profile = entry.profile.clone();
            // The `created` flag comes from get_or_create itself: a
            // concurrent creator may win the race, and only one response
            // may claim the creation (the loser's config was discarded).
            match monitors.get_or_create(&name, || OnlineMonitor::new(profile, cfg)) {
                Ok((m, created)) => (m, created),
                Err(e) => return Response::error(400, &e.to_string()),
            }
        }
    };
    let threads = match field_usize(req, &body, "threads") {
        Ok(t) => t.unwrap_or(1).clamp(1, 64),
        Err(e) => return Response::error(400, &e),
    };
    // Two-phase pipeline: the batch scores lock-free through the entry's
    // published plan (optionally in parallel), then commits in admission
    // order under the short monitor lock. Concurrent connections feeding
    // one monitor serialize only the commit, and the interleaving is
    // bit-identical to serialized ingest.
    match monitor.ingest_traced(&frame, threads, trace_id) {
        Ok((report, status)) => {
            metrics.add_rows_checked(report.rows);
            Response::json(&obj(vec![
                ("monitor", string(&name)),
                ("created", Value::Bool(created)),
                // The committed profile generation, surfaced alongside the
                // nested status so clients can correlate trace events with
                // scorer swaps without digging into the status object.
                ("generation", Value::Number(status.generation as f64)),
                ("rows", Value::Number(report.rows as f64)),
                ("start_row", Value::Number(report.start_row as f64)),
                ("windows", report.windows.to_value()),
                ("alarm", Value::Bool(report.alarm)),
                ("status", status.to_value()),
            ]))
        }
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// An integer monitor/handler field: query parameter first (the only
/// channel binary-columnar requests have), then the JSON body.
fn field_usize(req: &Request, body: &Value, key: &str) -> Result<Option<usize>, String> {
    if let Some(s) = req.query_param(key) {
        return match s.parse() {
            Ok(v) => Ok(Some(v)),
            Err(_) => Err(format!("'{key}' must be a non-negative integer")),
        };
    }
    match json::get(body, key) {
        None => Ok(None),
        Some(v) => match json::as_usize(v) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("'{key}' must be a non-negative integer")),
        },
    }
}

/// A string monitor/handler field: query parameter first, then the JSON
/// body (a present-but-non-string body value reads as `""` so it still
/// hits the field's unknown-value error).
fn field_str<'a>(req: &'a Request, body: &'a Value, key: &str) -> Option<&'a str> {
    req.query_param(key).or_else(|| json::get(body, key).map(|v| json::as_str(v).unwrap_or("")))
}

/// Builds a [`MonitorConfig`] from the ingest request's optional fields
/// (query parameters or JSON body), on top of the crate defaults.
fn monitor_config_from(req: &Request, body: &Value) -> Result<MonitorConfig, String> {
    let mut cfg = MonitorConfig::default();
    let window = field_usize(req, body, "window")?.unwrap_or(cfg.spec.window());
    let stride = field_usize(req, body, "stride")?.unwrap_or(window);
    cfg.spec = WindowSpec::new(window, stride).map_err(|e| e.to_string())?;
    if let Some(spelled) = field_str(req, body, "detector") {
        cfg.detector = DetectorKind::parse(spelled)
            .ok_or_else(|| format!("unknown detector '{spelled}' (ewma, cusum, page-hinkley)"))?;
    }
    if let Some(spelled) = field_str(req, body, "aggregator") {
        cfg.aggregator = match spelled {
            "mean" => DriftAggregator::Mean,
            "max" => DriftAggregator::Max,
            other => return Err(format!("unknown aggregator '{other}' (mean, max)")),
        };
    }
    if let Some(v) = field_usize(req, body, "calibrate")? {
        cfg.calibration_windows = v;
    }
    if let Some(v) = field_usize(req, body, "patience")? {
        cfg.patience = v;
    }
    Ok(cfg)
}

/// `DELETE /v1/monitor?monitor=name`: drops a monitor (and frees its
/// slot under [`MAX_MONITORS`]). 404 when absent; reserved (`__`-prefixed)
/// monitors belong to the server and cannot be deleted externally.
fn monitor_delete(req: &Request, monitors: &MonitorSet) -> Response {
    let Some(name) = req.query_param("monitor") else {
        return Response::error(400, "name the monitor via ?monitor=");
    };
    if name.starts_with(RESERVED_NAME_PREFIX) {
        return Response::error(
            400,
            &format!("'{name}' is reserved for the server's own monitors"),
        );
    }
    if !monitors.remove(name) {
        return Response::error(404, &format!("no monitor named '{name}'"));
    }
    Response::json(&obj(vec![
        ("deleted", string(name)),
        ("monitors", Value::Number(monitors.len() as f64)),
    ]))
}

/// `GET /v1/monitor`: status snapshots. `?monitor=name` selects one
/// (404 when absent); otherwise every monitor is listed.
fn monitor_status(req: &Request, monitors: &MonitorSet) -> Response {
    let entry = |name: &str, status: &MonitorStatus| {
        let mut v = status.to_value();
        if let Value::Object(pairs) = &mut v {
            pairs.insert(0, ("monitor".to_owned(), string(name)));
        }
        v
    };
    if let Some(name) = req.query_param("monitor") {
        let Some(m) = monitors.get(name) else {
            return Response::error(404, &format!("no monitor named '{name}'"));
        };
        // Published status — never waits behind an in-flight ingest.
        return Response::json(&entry(name, &m.status()));
    }
    let list: Vec<Value> = monitors.statuses().iter().map(|(n, s)| entry(n, s)).collect();
    Response::json(&obj(vec![
        ("monitors", Value::Array(list)),
        ("count", Value::Number(monitors.len() as f64)),
    ]))
}

/// `GET /v1/trace`: the flight recorder's recent spans plus a top-K
/// slowest-requests table with full phase breakdown.
///
/// Query parameters: `endpoint=` keeps only request-lifecycle spans for
/// that endpoint (and scopes the slow table to it), `monitor=` keeps only
/// ingest-pipeline spans for that monitor, `min_us=` drops spans shorter
/// than the threshold, `limit=` bounds the span list (default 256), and
/// `top=` sizes the slow-request table (default 10).
fn trace(req: &Request, trace_buffer: usize) -> Response {
    // Per-server gate AND process-global recorder: both must be on for
    // this daemon's requests to have recorded anything.
    let enabled = trace_buffer > 0 && cc_trace::enabled();
    let endpoint = req.query_param("endpoint");
    let monitor = req.query_param("monitor");
    let min_us: u64 = req.query_param("min_us").and_then(|s| s.parse().ok()).unwrap_or(0);
    let limit: usize =
        req.query_param("limit").and_then(|s| s.parse().ok()).unwrap_or(256).clamp(1, 4096);
    let top: usize =
        req.query_param("top").and_then(|s| s.parse().ok()).unwrap_or(10).clamp(1, 256);

    let all = cc_trace::snapshot(4096);

    // The slow-request table groups request-lifecycle spans by trace id;
    // a request qualifies once its `handle` span is recorded. Phases are
    // sequential, so their sum is the request's total in-server time.
    struct Slow {
        endpoint: String,
        start_us: u64,
        phases: [u64; 4],
        seen_handle: bool,
    }
    let mut by_trace: Vec<(u64, Slow)> = Vec::new();
    for s in &all {
        let Some(idx) = cc_trace::Phase::SERVER.iter().position(|&p| p == s.phase) else {
            continue;
        };
        if endpoint.is_some_and(|e| e != s.tag) {
            continue;
        }
        let slot = match by_trace.iter_mut().find(|(id, _)| *id == s.trace_id) {
            Some((_, slot)) => slot,
            None => {
                by_trace.push((
                    s.trace_id,
                    Slow {
                        endpoint: String::new(),
                        start_us: s.start_us,
                        phases: [0; 4],
                        seen_handle: false,
                    },
                ));
                &mut by_trace.last_mut().expect("just pushed").1
            }
        };
        slot.phases[idx] += s.dur_us;
        slot.start_us = slot.start_us.min(s.start_us);
        if s.phase == cc_trace::Phase::Handle {
            slot.seen_handle = true;
            slot.endpoint = s.tag.clone();
        }
    }
    let mut slow: Vec<(u64, Slow)> = by_trace.into_iter().filter(|(_, s)| s.seen_handle).collect();
    slow.sort_by_key(|(_, s)| std::cmp::Reverse(s.phases.iter().sum::<u64>()));
    slow.truncate(top);
    let slowest: Vec<Value> = slow
        .into_iter()
        .map(|(id, s)| {
            let breakdown: Vec<(&str, Value)> = cc_trace::Phase::SERVER
                .iter()
                .enumerate()
                .map(|(i, p)| (p.name(), Value::Number(s.phases[i] as f64)))
                .collect();
            obj(vec![
                ("trace", string(cc_trace::id_hex(id))),
                ("endpoint", string(&s.endpoint)),
                ("start_us", Value::Number(s.start_us as f64)),
                ("total_us", Value::Number(s.phases.iter().sum::<u64>() as f64)),
                ("phases", obj(breakdown)),
            ])
        })
        .collect();

    let filtered: Vec<&cc_trace::SpanRecord> = all
        .iter()
        .filter(|s| {
            if s.dur_us < min_us {
                return false;
            }
            if let Some(e) = endpoint {
                if !(cc_trace::Phase::SERVER.contains(&s.phase) && s.tag == e) {
                    return false;
                }
            }
            if let Some(m) = monitor {
                let monitor_phase = cc_trace::Phase::MONITOR.contains(&s.phase)
                    || s.phase == cc_trace::Phase::WindowClose;
                if !(monitor_phase && s.tag == m) {
                    return false;
                }
            }
            true
        })
        .collect();
    let spans: Vec<Value> = filtered
        .iter()
        .rev()
        .take(limit)
        .rev()
        .map(|s| {
            obj(vec![
                ("phase", string(s.phase.name())),
                ("trace", string(cc_trace::id_hex(s.trace_id))),
                ("tag", string(&s.tag)),
                ("extra", Value::Number(s.extra as f64)),
                ("start_us", Value::Number(s.start_us as f64)),
                ("dur_us", Value::Number(s.dur_us as f64)),
            ])
        })
        .collect();

    Response::json(&obj(vec![
        ("buffer", Value::Number(if enabled { cc_trace::buffer_capacity() } else { 0 } as f64)),
        ("enabled", Value::Bool(enabled)),
        ("matched", Value::Number(filtered.len() as f64)),
        ("spans", Value::Array(spans)),
        ("slowest", Value::Array(slowest)),
    ]))
}

/// `GET /v1/logs`: the structured log ring, oldest-first.
///
/// Query parameters: `level=` keeps records at or above a level
/// (`debug`/`info`/`warn`/`error`), `endpoint=` matches the record's
/// endpoint label exactly, `trace=` matches a hex trace id, `limit=`
/// bounds the answer (default 256, newest kept).
fn logs(req: &Request, logger: &Logger) -> Response {
    let mut filter = LogFilter::default();
    if let Some(s) = req.query_param("level") {
        match Level::parse(s) {
            Some(l) => filter.min_level = Some(l),
            None => {
                return Response::error(
                    400,
                    &format!("unknown level '{s}' (debug, info, warn, error)"),
                )
            }
        }
    }
    if let Some(e) = req.query_param("endpoint") {
        filter.endpoint = Some(e.to_owned());
    }
    if let Some(t) = req.query_param("trace") {
        match u64::from_str_radix(t, 16) {
            Ok(v) => filter.trace = Some(v),
            Err(_) => return Response::error(400, "'trace' must be a hex trace id"),
        }
    }
    filter.limit =
        req.query_param("limit").and_then(|s| s.parse().ok()).unwrap_or(256).clamp(1, 4096);
    let records = logger.recent(&filter);
    Response::json(&obj(vec![
        ("level", string(logger.level().name())),
        ("capacity", Value::Number(logger.capacity() as f64)),
        ("emitted", Value::Number(logger.emitted() as f64)),
        ("evicted", Value::Number(logger.evicted() as f64)),
        ("count", Value::Number(records.len() as f64)),
        ("logs", Value::Array(records.iter().map(|r| r.to_value()).collect())),
    ]))
}

/// `GET /v1/self`: the self-watch report — sampler configuration and
/// counters, the latest folded sample, the `__self` detector's status,
/// and a tail of its drift history (`?history=` entries, default 64).
fn self_report(req: &Request, ctx: &RouteCtx<'_>) -> Response {
    let entry = ctx.monitors.get(SELF_MONITOR);
    let (synthesized, calibrated, degraded, status) = match &entry {
        Some(e) => {
            let s = e.status();
            (true, s.calibrated, s.alarm, s.to_value())
        }
        None => (false, false, false, Value::Null),
    };
    let mut fields = vec![
        ("monitor", string(SELF_MONITOR)),
        ("enabled", Value::Bool(ctx.self_watch.is_some())),
        ("ticks", Value::Number(ctx.self_state.ticks() as f64)),
        ("synthesized", Value::Bool(synthesized)),
        ("calibrated", Value::Bool(calibrated)),
        ("degraded", Value::Bool(degraded)),
        ("synth_errors", Value::Number(ctx.self_state.synth_errors() as f64)),
        ("ingest_errors", Value::Number(ctx.self_state.ingest_errors() as f64)),
        ("features", Value::Array(SELF_FEATURES.iter().copied().map(string).collect())),
    ];
    if let Some(cfg) = ctx.self_watch {
        fields.push(("interval_ms", Value::Number(cfg.interval.as_secs_f64() * 1e3)));
        fields.push(("warmup", Value::Number(cfg.warmup as f64)));
        fields.push(("window", Value::Number(cfg.window as f64)));
        fields.push(("calibrate", Value::Number(cfg.calibration_windows as f64)));
        fields.push(("patience", Value::Number(cfg.patience as f64)));
    }
    if let Some(sample) = ctx.self_state.last_sample() {
        fields.push((
            "sample",
            obj(SELF_FEATURES
                .iter()
                .copied()
                .zip(sample)
                .map(|(n, v)| (n, Value::Number(v)))
                .collect()),
        ));
    }
    fields.push(("status", status));
    if let Some(e) = &entry {
        let keep: usize =
            req.query_param("history").and_then(|s| s.parse().ok()).unwrap_or(64).clamp(1, 4096);
        let drifts: Vec<f64> = e.lock().history().collect();
        let tail = &drifts[drifts.len().saturating_sub(keep)..];
        fields.push(("history", num_array(tail)));
    }
    Response::json(&obj(fields))
}

/// A parsed batch request: the resolved profile entry, the batch frame,
/// and the raw body value (for handler-specific fields).
struct Batch {
    entry: Arc<ProfileEntry>,
    frame: DataFrame,
    body: Value,
}

/// Decodes a batch request body into its frame by negotiated encoding.
///
/// Binary columnar (`Content-Type: application/x-ccsynth-columnar`)
/// deserializes straight into the SoA `DataFrame` layout the compiled
/// plans gather from — zero float parsing, zero per-row allocation —
/// and returns an empty JSON body (handler fields ride the query
/// string). Anything else takes the JSON `"columns"` path.
fn batch_payload(req: &Request, metrics: &Metrics) -> Result<(DataFrame, Value), Response> {
    if req.body_is_columnar() {
        metrics.record_wire(true);
        let frame = crate::wire::decode_frame(&req.body)
            .map_err(|e| Response::error(400, &format!("bad columnar frame: {e}")))?;
        return Ok((frame, Value::Object(Vec::new())));
    }
    metrics.record_wire(false);
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    let body: Value = serde_json::from_str(text)
        .map_err(|e| Response::error(400, &format!("body is not valid JSON: {e}")))?;
    let Some(columns) = json::get(&body, "columns") else {
        return Err(Response::error(400, "body needs a 'columns' object"));
    };
    let frame = frame_from_columns(columns).map_err(|e| Response::error(400, &e))?;
    Ok((frame, body))
}

/// Shared plumbing for the three batch endpoints: decode the body (JSON
/// or binary columnar), resolve the profile against a pinned snapshot,
/// count the rows into the metrics, then hand off.
fn with_batch(
    req: &Request,
    registry: &ProfileRegistry,
    metrics: &Metrics,
    handler: fn(&Request, Batch) -> Response,
) -> Response {
    let (frame, body) = match batch_payload(req, metrics) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let snap: Arc<Snapshot> = registry.snapshot();
    let name =
        req.query_param("profile").or_else(|| json::get(&body, "profile").and_then(json::as_str));
    let Some(entry) = snap.select(name) else {
        let msg = match name {
            Some(n) => format!("no profile named '{n}'"),
            None => format!("{} profiles loaded; name one via 'profile'", snap.entries().len()),
        };
        return Response::error(404, &msg);
    };
    let rows = frame.n_rows();
    let response = handler(req, Batch { entry: entry.clone(), frame, body });
    // Count rows only when they were actually scored — a 400 whose
    // columns never bound must not inflate the throughput counter.
    if response.status == 200 {
        metrics.add_rows_checked(rows);
    }
    response
}

/// `POST /v1/check`: per-tuple violations through the compiled plan —
/// bit-identical to a direct [`conformance::CompiledProfile::violations`]
/// call on the same frame (the shim's shortest-round-trip `f64` JSON
/// keeps it exact over the wire).
fn check(req: &Request, batch: Batch) -> Response {
    let threads = match field_usize(req, &batch.body, "threads") {
        Ok(t) => t.unwrap_or(1).clamp(1, 64),
        Err(e) => return Response::error(400, &e),
    };
    // An empty batch conforms trivially — and carries no type information
    // for its columns, so it must not reach plan binding.
    let violations = if batch.frame.n_rows() == 0 {
        Vec::new()
    } else {
        match batch.entry.plan.violations_parallel(&batch.frame, threads) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e.to_string()),
        }
    };
    // Binary reply when asked for: the violations plane as a one-column
    // columnar frame — same f64 bits as the JSON array, no formatting.
    if req.accepts_columnar() {
        return Response::columnar(crate::wire::encode_violations(&violations));
    }
    let n = violations.len();
    let mean = violations.iter().sum::<f64>() / n.max(1) as f64;
    let max = violations.iter().fold(0.0f64, |m, &v| m.max(v));
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(n as f64)),
        ("constraints", Value::Number(batch.entry.plan.constraint_count() as f64)),
        ("mean", Value::Number(mean)),
        ("max", Value::Number(max)),
        ("violations", num_array(&violations)),
    ];
    let threshold = req
        .query_param("threshold")
        .and_then(|t| t.parse().ok())
        .or_else(|| json::get(&batch.body, "threshold").and_then(json::as_f64));
    if let Some(threshold) = threshold {
        let n_unsafe = violations.iter().filter(|&&v| v > threshold).count();
        fields.push(("unsafe", Value::Number(n_unsafe as f64)));
    }
    let top = req
        .query_param("top")
        .and_then(|t| t.parse().ok())
        .or_else(|| json::get(&batch.body, "top").and_then(json::as_usize))
        .unwrap_or(0);
    if top > 0 {
        fields.push(("top", top_offenders(&violations, top)));
    }
    Response::json(&obj(fields))
}

/// The `k` worst rows as `[{row, violation}]`, worst first — the same
/// [`conformance::top_k_desc`] ranking the CLI's `check --top` uses.
fn top_offenders(violations: &[f64], k: usize) -> Value {
    Value::Array(
        conformance::top_k_desc(violations, k)
            .into_iter()
            .map(|i| {
                obj(vec![
                    ("row", Value::Number(i as f64)),
                    ("violation", Value::Number(violations[i])),
                ])
            })
            .collect(),
    )
}

/// `POST /v1/explain`: per-constraint mean contributions, plus ExTuNe
/// attribute responsibility when the request supplies training means
/// (`"means": {"attr": value, …}` — the daemon holds compiled plans, not
/// training frames).
fn explain(_req: &Request, batch: Batch) -> Response {
    let plan = &batch.entry.plan;
    // Empty batch: nothing to explain (and no column types to bind).
    if batch.frame.n_rows() == 0 {
        return Response::json(&obj(vec![
            ("profile", string(&batch.entry.name)),
            ("rows", Value::Number(0.0)),
            ("breakdown", Value::Array(Vec::new())),
        ]));
    }
    let breakdown = match conformance::breakdown_from_plan(plan, &batch.frame) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let breakdown_json = Value::Array(
        breakdown
            .iter()
            .map(|c| obj(vec![("label", string(&c.label)), ("score", Value::Number(c.score))]))
            .collect(),
    );
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(batch.frame.n_rows() as f64)),
        ("breakdown", breakdown_json),
    ];
    if let Some(means) = json::get(&batch.body, "means") {
        let mut train_means = Vec::with_capacity(plan.attributes().len());
        for a in plan.attributes() {
            match json::get(means, a).and_then(json::as_f64) {
                Some(m) => train_means.push(m),
                None => {
                    return Response::error(400, &format!("'means' is missing attribute '{a}'"))
                }
            }
        }
        let ranked = match mean_responsibility_from_plan(plan, &train_means, &batch.frame) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        fields.push((
            "responsibility",
            Value::Array(
                ranked
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("attribute", string(&r.attribute)),
                            ("score", Value::Number(r.score)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Response::json(&obj(fields))
}

/// `POST /v1/drift`: the CLI's three aggregators over one batch, against
/// the cached plan (no recompilation per request).
fn drift(_req: &Request, batch: Batch) -> Response {
    let plan = &batch.entry.plan;
    let mut fields = vec![
        ("profile", string(&batch.entry.name)),
        ("rows", Value::Number(batch.frame.n_rows() as f64)),
    ];
    for (label, agg) in [
        ("mean", DriftAggregator::Mean),
        ("p95", DriftAggregator::Quantile(0.95)),
        ("max", DriftAggregator::Max),
    ] {
        // Empty batch: drift 0 by the aggregators' empty-input
        // convention, without binding untyped columns.
        if batch.frame.n_rows() == 0 {
            fields.push((label, Value::Number(0.0)));
            continue;
        }
        match agg.aggregate_compiled(plan, &batch.frame) {
            Ok(d) => fields.push((label, Value::Number(d))),
            Err(e) => return Response::error(400, &e.to_string()),
        }
    }
    Response::json(&obj(fields))
}
