//! Shared scaffolding for the server integration tests: deterministic
//! frames, profile files on disk, and a running ephemeral-port server.
//!
//! Compiled once per test binary; not every binary uses every helper.
#![allow(dead_code)]

use cc_frame::DataFrame;
use cc_server::{IoMode, ProfileRegistry, Server, ServerConfig, ServerHandle};
use conformance::{synthesize, ConformanceProfile, SynthOptions};
use std::path::PathBuf;

/// A deterministic frame with a global invariant (`z = x + regime·y`)
/// and a categorical regime column; `bias` shifts the invariant so
/// different biases synthesize genuinely different profiles.
pub fn regime_frame(n: usize, bias: f64) -> DataFrame {
    const REGIMES: [&str; 3] = ["a", "b", "c"];
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut z = Vec::new();
    let mut regime = Vec::new();
    for i in 0..n {
        let r = i % 3;
        let xv = (i as f64 * 0.37).sin() * 20.0;
        let yv = ((i * 13) % 41) as f64 - 20.0;
        x.push(xv);
        y.push(yv);
        z.push(xv + (r as f64 + 1.0) * yv + bias);
        regime.push(REGIMES[r]);
    }
    let mut df = DataFrame::new();
    df.push_numeric("x", x).unwrap();
    df.push_numeric("y", y).unwrap();
    df.push_numeric("z", z).unwrap();
    df.push_categorical("regime", &regime).unwrap();
    df
}

/// Synthesizes a profile from [`regime_frame`] data.
pub fn regime_profile(n: usize, bias: f64) -> ConformanceProfile {
    synthesize(&regime_frame(n, bias), &SynthOptions::default()).unwrap()
}

/// A fresh per-test temp dir (name-scoped so parallel tests don't
/// collide).
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cc_server_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a profile into `dir` under `<name>.json`.
pub fn write_profile(dir: &std::path::Path, name: &str, profile: &ConformanceProfile) {
    let json = serde_json::to_string_pretty(profile).unwrap();
    std::fs::write(dir.join(format!("{name}.json")), json).unwrap();
}

/// Starts a server over `dir` on an ephemeral port with the default
/// connection core ([`IoMode::Auto`]: epoll on Linux, threads
/// elsewhere).
pub fn start_server(dir: &std::path::Path, workers: usize) -> ServerHandle {
    start_server_io(dir, workers, IoMode::Auto)
}

/// Starts a server over `dir` on an ephemeral port with an explicit
/// connection core — the semantics tests run on both.
pub fn start_server_io(dir: &std::path::Path, workers: usize, io: IoMode) -> ServerHandle {
    let registry = ProfileRegistry::from_dir(dir).unwrap();
    let config =
        ServerConfig { addr: "127.0.0.1:0".to_owned(), workers, io, ..ServerConfig::default() };
    Server::start(config, registry).unwrap()
}

/// Both connection cores on this platform (epoll is Linux-only).
pub fn io_modes() -> Vec<IoMode> {
    if cfg!(target_os = "linux") {
        vec![IoMode::Threads, IoMode::Epoll]
    } else {
        vec![IoMode::Threads]
    }
}

/// The frame serialized as the wire's columnar `{"columns": …}` body —
/// the server's own builder, so tests exercise the same encoding.
#[allow(unused_imports)] // not every test binary builds request bodies
pub use cc_server::json::columns_body;
