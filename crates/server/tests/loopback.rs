//! The acceptance-criteria integration tests: HTTP-path results are
//! bit-identical to direct library calls, and registry hot-reload swaps
//! profiles under live concurrent traffic without failing a single
//! in-flight request.

mod common;

use cc_server::HttpClient;
use conformance::CompiledProfile;
use serde_json::Value;
use std::sync::atomic::{AtomicBool, Ordering};

/// Pulls `"violations"` out of a `/v1/check` response as raw f64s.
fn violations_of(v: &Value) -> Vec<f64> {
    let Some(Value::Array(items)) = field(v, "violations") else {
        panic!("response lacks violations: {v:?}");
    };
    items.iter().map(|x| cc_server::json::as_f64(x).expect("numeric violation")).collect()
}

use cc_server::json::get as field;

#[test]
fn http_check_bit_identical_to_library_path() {
    let dir = common::temp_dir("bitid");
    let profile = common::regime_profile(900, 0.0);
    common::write_profile(&dir, "main", &profile);
    let handle = common::start_server(&dir, 2);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Serving batches that straddle the evaluation block size, plus the
    // degenerate empty batch.
    for n in [0, 1, 511, 512, 513, 700] {
        let serve = common::regime_frame(n, 3.0);
        let body = common::columns_body(&serve);
        let resp = client.post_json("/v1/check", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let http_v = violations_of(&resp.json().unwrap());

        // The library path on the same frame. The wire carries f64s in
        // shortest-round-trip decimal both directions, so equality must
        // hold to the bit.
        let plan = CompiledProfile::compile(&profile);
        let lib_v = plan.violations(&serve).unwrap();
        assert_eq!(http_v.len(), lib_v.len());
        for (i, (h, l)) in http_v.iter().zip(&lib_v).enumerate() {
            assert_eq!(h.to_bits(), l.to_bits(), "row {i} of n={n}: http {h} vs lib {l}");
        }
    }

    // Drift over HTTP matches the aggregators over the same plan.
    let serve = common::regime_frame(333, 5.0);
    let resp = client.post_json("/v1/drift", &common::columns_body(&serve)).unwrap();
    assert_eq!(resp.status, 200);
    let drift = resp.json().unwrap();
    let plan = CompiledProfile::compile(&profile);
    for (key, agg) in [
        ("mean", conformance::DriftAggregator::Mean),
        ("p95", conformance::DriftAggregator::Quantile(0.95)),
        ("max", conformance::DriftAggregator::Max),
    ] {
        let Some(Value::Number(got)) = field(&drift, key) else { panic!("missing {key}") };
        let want = agg.aggregate_compiled(&plan, &serve).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "{key}");
    }

    // Explain: breakdown labels match the plan's, and responsibility
    // appears when means are supplied.
    let means: Vec<(String, Value)> =
        profile.numeric_attributes.iter().map(|a| (a.clone(), Value::Number(0.0))).collect();
    let mut body = common::columns_body(&common::regime_frame(40, 50.0));
    if let Value::Object(pairs) = &mut body {
        pairs.push(("means".to_owned(), Value::Object(means)));
    }
    let resp = client.post_json("/v1/explain", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let explain = resp.json().unwrap();
    assert!(matches!(field(&explain, "breakdown"), Some(Value::Array(a)) if !a.is_empty()));
    let Some(Value::Array(resp_items)) = field(&explain, "responsibility") else {
        panic!("responsibility missing when means were supplied");
    };
    assert_eq!(resp_items.len(), profile.numeric_attributes.len());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_reload_under_concurrent_traffic() {
    let dir = common::temp_dir("hotswap");
    let profile_a = common::regime_profile(600, 0.0);
    common::write_profile(&dir, "live", &profile_a);
    let handle = common::start_server(&dir, 4);
    let addr = handle.addr();

    let serve = common::regime_frame(257, 1.0);
    let body = common::columns_body(&serve);
    let plan_a = CompiledProfile::compile(&profile_a);
    let expect_a = plan_a.violations(&serve).unwrap();
    let profile_b = common::regime_profile(600, 40.0);
    let plan_b = CompiledProfile::compile(&profile_b);
    let expect_b = plan_b.violations(&serve).unwrap();
    assert_ne!(
        expect_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        expect_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "the two generations must be distinguishable"
    );

    // Clients hammer /v1/check on keep-alive connections while the main
    // thread swaps the profile file and reloads repeatedly. Every
    // response must be a 200 whose violations match generation A or
    // generation B exactly — never an error, never a mix.
    let stop = AtomicBool::new(false);
    let checks_done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut client = HttpClient::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let resp = client.post_json("/v1/check", &body).unwrap();
                    assert_eq!(resp.status, 200, "in-flight request failed: {}", resp.text());
                    let got = violations_of(&resp.json().unwrap());
                    let bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                    let a: Vec<u64> = expect_a.iter().map(|v| v.to_bits()).collect();
                    let b: Vec<u64> = expect_b.iter().map(|v| v.to_bits()).collect();
                    assert!(
                        bits == a || bits == b,
                        "response matches neither generation bit-for-bit"
                    );
                    checks_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Interleave a dozen swap+reload cycles with the traffic.
        let mut admin = HttpClient::connect(addr).unwrap();
        for gen in 0..12 {
            let next = if gen % 2 == 0 { &profile_b } else { &profile_a };
            common::write_profile(&dir, "live", next);
            let resp = admin.request("POST", "/v1/reload", b"").unwrap();
            assert_eq!(resp.status, 200, "reload failed: {}", resp.text());
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        checks_done.load(Ordering::Relaxed) >= 20,
        "traffic threads barely ran ({} checks)",
        checks_done.load(Ordering::Relaxed)
    );

    // Registry generation advanced through all 12 reloads + initial load.
    let mut client = HttpClient::connect(addr).unwrap();
    let health = client.get("/healthz").unwrap().json().unwrap();
    let Some(Value::Number(generation)) = field(&health, "generation") else {
        panic!("healthz lacks generation")
    };
    assert_eq!(*generation, 13.0);

    // The last swap left generation A on disk (gen 11 wrote profile_a):
    // post-reload traffic must now match A exactly.
    let resp = client.post_json("/v1/check", &body).unwrap();
    let bits: Vec<u64> = violations_of(&resp.json().unwrap()).iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, expect_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

    // A reload failure (broken file) keeps serving the old snapshot.
    std::fs::write(dir.join("live.json"), "{oops").unwrap();
    let resp = client.request("POST", "/v1/reload", b"").unwrap();
    assert_eq!(resp.status, 409, "{}", resp.text());
    let resp = client.post_json("/v1/check", &body).unwrap();
    assert_eq!(resp.status, 200);

    // Metrics reflect the reload churn.
    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text();
    assert!(text.contains("cc_server_profile_compiles_total{profile=\"live\"} 13"), "{text}");
    assert!(text.contains("cc_server_registry_generation 13"), "{text}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_is_not_blocked_by_a_partial_request() {
    for io in common::io_modes() {
        shutdown_is_not_blocked_by_a_partial_request_on(io);
    }
}

fn shutdown_is_not_blocked_by_a_partial_request_on(io: cc_server::IoMode) {
    let dir = common::temp_dir(&format!("partial_{io:?}"));
    common::write_profile(&dir, "p", &common::regime_profile(300, 0.0));
    let handle = common::start_server_io(&dir, 1, io);
    let addr = handle.addr();
    // Half a request, never completed: the lone worker is reading it.
    use std::io::Write;
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /v1/check HTTP/1.1\r\ncontent-length: 1000\r\n\r\npartial").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Graceful shutdown must still complete promptly — incomplete
    // requests are dropped, not waited out.
    let t = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t.elapsed() < std::time::Duration::from_secs(5),
        "shutdown hung on a partial request ({:?})",
        t.elapsed()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_keep_alive_client_does_not_starve_others() {
    for io in common::io_modes() {
        persistent_keep_alive_client_does_not_starve_others_on(io);
    }
}

fn persistent_keep_alive_client_does_not_starve_others_on(io: cc_server::IoMode) {
    let dir = common::temp_dir(&format!("fairness_{io:?}"));
    common::write_profile(&dir, "p", &common::regime_profile(300, 0.0));
    // One worker: under the threads core, without fair requeueing a
    // single persistent keep-alive client would pin it forever; under
    // the epoll core the lone compute worker drains jobs FIFO across
    // connections.
    let handle = common::start_server_io(&dir, 1, io);
    let addr = handle.addr();
    let body = common::columns_body(&common::regime_frame(64, 1.0));

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut hog = HttpClient::connect(addr).unwrap();
            while !stop.load(Ordering::Relaxed) {
                // The hog never idles; only fairness lets anyone else in.
                let resp = hog.post_json("/v1/check", &body).unwrap();
                assert_eq!(resp.status, 200);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        // A latecomer on a raw socket with a hard read deadline: it must
        // be answered while the hog keeps hammering.
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        use std::io::{Read, Write};
        s.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("latecomer starved behind keep-alive client");
        assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 200"));
        stop.store(true, Ordering::Relaxed);
    });
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_completes_inflight_requests() {
    for io in common::io_modes() {
        graceful_shutdown_completes_inflight_requests_on(io);
    }
}

fn graceful_shutdown_completes_inflight_requests_on(io: cc_server::IoMode) {
    let dir = common::temp_dir(&format!("drain_{io:?}"));
    common::write_profile(&dir, "p", &common::regime_profile(400, 0.0));
    let handle = common::start_server_io(&dir, 2, io);
    let addr = handle.addr();
    let body = common::columns_body(&common::regime_frame(2000, 1.0));

    // Fire a request from a thread, then shut down concurrently; the
    // response must still arrive complete (keep-alive demoted to close).
    let worker = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.post_json("/v1/check", &body).map(|r| r.status)
    });
    std::thread::sleep(std::time::Duration::from_millis(5));
    handle.shutdown();
    let status = worker.join().unwrap();
    assert!(
        matches!(status, Ok(200)) || status.is_err(),
        "in-flight request must finish cleanly or the connection predate the server: {status:?}"
    );
    // After shutdown the port stops answering.
    match HttpClient::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.get("/healthz").is_err(), "server still serving after shutdown"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
