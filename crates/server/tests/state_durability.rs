//! Daemon-level durability: a server started with a state dir snapshots
//! on demand and at shutdown, a second server over the same dir restores
//! monitors / generation / counters exactly, `/healthz` reports the
//! durability posture, and a corrupt snapshot quarantines into a fresh
//! boot — all over the real HTTP loopback path.

mod common;

use cc_server::json::get as field;
use cc_server::{HttpClient, ProfileRegistry, Server, ServerConfig, ServerHandle};
use serde_json::Value;
use std::path::Path;

fn start_durable(dir: &Path, state_dir: &Path) -> ServerHandle {
    let registry = ProfileRegistry::from_dir(dir).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        state_dir: Some(state_dir.to_path_buf()),
        ..ServerConfig::default()
    };
    Server::start(config, registry).unwrap()
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn num(v: &Value, key: &str) -> f64 {
    match field(v, key) {
        Some(Value::Number(n)) => *n,
        other => panic!("field {key}: {other:?}"),
    }
}

#[test]
fn snapshot_restart_restores_monitors_generation_and_counters() {
    let dir = common::temp_dir("durability_profiles");
    let state = common::temp_dir("durability_state");
    common::write_profile(&dir, "main", &common::regime_profile(900, 0.0));

    // ── First life: ingest until calibrated, reload twice, /v1/snapshot.
    let handle = start_durable(&dir, &state);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&health, "durable").unwrap()), Some(true));
    assert_eq!(as_bool(field(&health, "restored").unwrap()), Some(false), "fresh state dir");

    let body = {
        let Value::Object(mut pairs) = common::columns_body(&common::regime_frame(100, 0.0)) else {
            panic!("columns_body is an object")
        };
        pairs.push(("monitor".into(), Value::String("orders".into())));
        pairs.push(("window".into(), Value::Number(50.0)));
        pairs.push(("calibrate".into(), Value::Number(2.0)));
        Value::Object(pairs)
    };
    for _ in 0..3 {
        let resp = client.post_json("/v1/ingest", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    let status = client.get("/v1/monitor?monitor=orders").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&status, "calibrated").unwrap()), Some(true));
    let windows_before = num(&status, "windows_closed");
    assert_eq!(windows_before, 6.0);

    // Bump the registry generation past 1 so the restore floor is visible.
    for _ in 0..2 {
        assert_eq!(client.post_json("/v1/reload", &Value::Object(vec![])).unwrap().status, 200);
    }
    let snap = client.post_json("/v1/snapshot", &Value::Object(vec![])).unwrap();
    assert_eq!(snap.status, 200, "{}", snap.text());
    let snap = snap.json().unwrap();
    assert_eq!(num(&snap, "monitors"), 1.0);
    assert_eq!(num(&snap, "generation"), 3.0);
    assert!(num(&snap, "bytes") > 0.0);
    // Kill without graceful shutdown: drop the handle hard by leaking it
    // (no .shutdown() call) — the /v1/snapshot file must be enough.
    std::mem::forget(handle);

    // ── Second life: same state dir.
    let handle2 = start_durable(&dir, &state);
    let mut client2 = HttpClient::connect(handle2.addr()).unwrap();
    let health = client2.get("/healthz").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&health, "restored").unwrap()), Some(true));
    assert_eq!(num(&health, "generation"), 3.0, "generation survives the restart");

    let status = client2.get("/v1/monitor?monitor=orders").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&status, "calibrated").unwrap()), Some(true), "still calibrated");
    assert_eq!(num(&status, "windows_closed"), windows_before);
    assert_eq!(num(&status, "rows_ingested"), 300.0);

    // The restored monitor keeps working: a shifted batch still alarms.
    let shifted = {
        let Value::Object(mut pairs) = common::columns_body(&common::regime_frame(200, 60.0))
        else {
            panic!("columns_body is an object")
        };
        pairs.push(("monitor".into(), Value::String("orders".into())));
        Value::Object(pairs)
    };
    let resp = client2.post_json("/v1/ingest", &shifted).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(as_bool(field(&resp.json().unwrap(), "alarm").unwrap()), Some(true));

    // rows_checked survived and keeps accumulating (300 before + 200 now).
    let metrics = client2.get("/metrics").unwrap();
    assert!(
        metrics.text().contains("cc_server_rows_checked_total 500"),
        "rows_checked should accumulate across the restart:\n{}",
        metrics.text()
    );

    // ── Graceful shutdown writes a final snapshot; a third life sees the
    // alarmed monitor.
    handle2.shutdown();
    let handle3 = start_durable(&dir, &state);
    let mut client3 = HttpClient::connect(handle3.addr()).unwrap();
    let status = client3.get("/v1/monitor?monitor=orders").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&status, "alarm").unwrap()), Some(true), "alarm state persisted");
    handle3.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn corrupt_state_file_quarantines_and_boots_fresh() {
    let dir = common::temp_dir("durability_corrupt_profiles");
    let state = common::temp_dir("durability_corrupt_state");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    std::fs::write(state.join(cc_server::STATE_FILE), "{definitely not a snapshot").unwrap();

    let handle = start_durable(&dir, &state);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&health, "restored").unwrap()), Some(false));
    assert_eq!(field(&health, "status"), Some(&Value::String("ok".into())), "still serving");
    assert!(
        state.join(format!("{}.corrupt", cc_server::STATE_FILE)).exists(),
        "damaged snapshot must be quarantined"
    );
    // The quarantined file does not block new snapshots.
    let snap = client.post_json("/v1/snapshot", &Value::Object(vec![])).unwrap();
    assert_eq!(snap.status, 200, "{}", snap.text());
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn snapshot_without_state_dir_is_a_conflict() {
    let dir = common::temp_dir("durability_nodir");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(as_bool(field(&health, "durable").unwrap()), Some(false));
    let resp = client.post_json("/v1/snapshot", &Value::Object(vec![])).unwrap();
    assert_eq!(resp.status, 409, "{}", resp.text());
    // Method guard: GET /v1/snapshot is 405.
    assert_eq!(client.get("/v1/snapshot").unwrap().status, 405);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
