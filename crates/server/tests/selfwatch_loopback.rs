//! Self-watch over the real loopback path: the daemon monitors itself
//! with its own detectors. An induced degradation (error storm) must
//! raise the reserved `__self` monitor's alarm and surface everywhere
//! the operator looks — `/healthz` `degraded`, the
//! `cc_server_self_alarm` gauge, and `/v1/self` — while the structured
//! log ring stays queryable via `/v1/logs` and the reserved namespace
//! stays closed to external writers.

mod common;

use cc_server::json::{as_f64, as_str, get as field};
use cc_server::{
    HttpClient, IoMode, ProfileRegistry, SelfWatchConfig, Server, ServerConfig, ServerHandle,
    SELF_MONITOR,
};
use serde_json::Value;
use std::time::{Duration, Instant};

/// A server with an aggressive self-watch cadence so the whole
/// synthesize → calibrate → alarm arc fits in test time.
fn start_selfwatch_server(dir: &std::path::Path, io: IoMode) -> ServerHandle {
    let registry = ProfileRegistry::from_dir(dir).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        io,
        self_watch: Some(SelfWatchConfig {
            interval: Duration::from_millis(25),
            warmup: 4,
            window: 4,
            calibration_windows: 2,
            patience: 2,
        }),
        ..ServerConfig::default()
    };
    Server::start(config, registry).unwrap()
}

fn check_body(rows: usize) -> Vec<u8> {
    let frame = common::regime_frame(rows, 0.0);
    serde_json::to_string(&common::columns_body(&frame)).unwrap().into_bytes()
}

fn self_report(client: &mut HttpClient) -> Value {
    let resp = client.get("/v1/self").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    resp.json().unwrap()
}

fn is_true(v: &Value, key: &str) -> bool {
    matches!(field(v, key), Some(Value::Bool(true)))
}

/// The acceptance arc: steady traffic through warmup + calibration,
/// then an error storm; the `__self` detector must alarm within its
/// patience and the degradation must be visible on every surface.
#[test]
fn induced_degradation_raises_the_self_alarm_everywhere() {
    let dir = common::temp_dir("selfwatch_alarm");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = start_selfwatch_server(&dir, IoMode::Auto);
    let mut load = HttpClient::connect(handle.addr()).unwrap();
    let mut probe = HttpClient::connect(handle.addr()).unwrap();

    // Steady all-2xx load (varying batch sizes so the folded features
    // are not constant) until the meta-monitor has synthesized its
    // profile and calibrated its detector baseline.
    let deadline = Instant::now() + Duration::from_secs(30);
    let bodies = [check_body(16), check_body(48), check_body(96)];
    let mut i = 0usize;
    loop {
        let resp = load.request("POST", "/v1/check", &bodies[i % bodies.len()]).unwrap();
        assert_eq!(resp.status, 200);
        i += 1;
        let report = self_report(&mut probe);
        if is_true(&report, "calibrated") {
            assert!(is_true(&report, "enabled"));
            assert!(is_true(&report, "synthesized"));
            assert!(!is_true(&report, "degraded"), "steady load must not alarm");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "self-watch never calibrated under steady load: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // A calibrated, healthy daemon reports ok on /healthz …
    let health = probe.get("/healthz").unwrap().json().unwrap();
    assert_eq!(field(&health, "status").and_then(as_str), Some("ok"));
    assert!(!is_true(&health, "degraded"));
    // … and exposes an unalarmed self gauge.
    let metrics = probe.get("/metrics").unwrap();
    let text = metrics.text();
    assert!(text.contains("cc_server_self_alarm 0"), "expected quiet gauge in:\n{text}");

    // Degrade the service from the outside: a storm of rejected
    // requests flips the folded error_ratio from ~0 to ~1.
    let deadline = Instant::now() + Duration::from_secs(30);
    let alarmed = loop {
        for _ in 0..8 {
            let resp = load.request("POST", "/v1/check", b"{ not json").unwrap();
            assert_eq!(resp.status, 400);
        }
        let report = self_report(&mut probe);
        let alarms_total = field(&report, "status")
            .and_then(|s| field(s, "alarms_total"))
            .and_then(as_f64)
            .unwrap_or(0.0);
        if alarms_total >= 1.0 {
            break report;
        }
        assert!(Instant::now() < deadline, "error storm never alarmed __self: {report:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(is_true(&alarmed, "synthesized"));

    // While the storm continues, the live alarm must surface on all
    // three operator surfaces (the flag itself clears once healthy
    // windows close again, so keep the degradation flowing).
    let deadline = Instant::now() + Duration::from_secs(30);
    let (mut saw_health, mut saw_gauge, mut saw_self) = (false, false, false);
    while !(saw_health && saw_gauge && saw_self) {
        for _ in 0..8 {
            let resp = load.request("POST", "/v1/check", b"{ not json").unwrap();
            assert_eq!(resp.status, 400);
        }
        let health = probe.get("/healthz").unwrap().json().unwrap();
        if is_true(&health, "degraded") {
            assert_eq!(field(&health, "status").and_then(as_str), Some("degraded"));
            saw_health = true;
        }
        let metrics = probe.get("/metrics").unwrap();
        let text = metrics.text();
        if text.contains("cc_server_self_alarm 1") {
            saw_gauge = true;
        }
        assert!(
            text.contains("cc_server_self_alarms_total"),
            "self gauges must be exported once __self exists"
        );
        if is_true(&self_report(&mut probe), "degraded") {
            saw_self = true;
        }
        assert!(
            Instant::now() < deadline,
            "alarm never surfaced everywhere (healthz {saw_health}, gauge {saw_gauge}, self {saw_self})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}

/// `/v1/self` reports the sampler's posture long before anything is
/// synthesized, and the reserved namespace is closed to external
/// ingest and delete.
#[test]
fn self_report_and_reserved_namespace_guards() {
    let dir = common::temp_dir("selfwatch_reserved");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = start_selfwatch_server(&dir, IoMode::Auto);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let report = self_report(&mut client);
    assert_eq!(field(&report, "monitor").and_then(as_str), Some(SELF_MONITOR));
    assert!(is_true(&report, "enabled"));
    let Some(Value::Array(features)) = field(&report, "features") else {
        panic!("features array: {report:?}")
    };
    assert!(!features.is_empty());

    // External ingest cannot write into the reserved namespace …
    let frame = common::regime_frame(64, 0.0);
    let Value::Object(mut pairs) = common::columns_body(&frame) else { panic!("object body") };
    pairs.push(("monitor".to_owned(), Value::String(SELF_MONITOR.into())));
    let resp = client.post_json("/v1/ingest", &Value::Object(pairs)).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("reserved"), "{}", resp.text());

    // … nor under any name that fails the grammar.
    for bad in ["sp ace", "sla/sh", "", "__other"] {
        let Value::Object(mut pairs) = common::columns_body(&common::regime_frame(8, 0.0)) else {
            panic!("object body")
        };
        pairs.push(("monitor".to_owned(), Value::String((*bad).into())));
        let resp = client.post_json("/v1/ingest", &Value::Object(pairs)).unwrap();
        assert_eq!(resp.status, 400, "name '{bad}' must be rejected: {}", resp.text());
    }

    // DELETE cannot evict the server's own monitor.
    let resp =
        client.request("DELETE", &format!("/v1/monitor?monitor={SELF_MONITOR}"), b"").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("reserved"), "{}", resp.text());
    handle.shutdown();
}

/// A server started without self-watch answers `/v1/self` with
/// `enabled: false` and never grows a `__self` monitor; the self
/// gauges stay out of `/metrics`.
#[test]
fn self_watch_off_is_really_off() {
    let dir = common::temp_dir("selfwatch_off");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 2);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let report = self_report(&mut client);
    assert!(!is_true(&report, "enabled"));
    assert!(!is_true(&report, "synthesized"));
    assert_eq!(field(&report, "status"), Some(&Value::Null));
    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text();
    assert!(!text.contains("cc_server_self_alarm"), "no __self monitor, no self gauges");
    assert!(text.contains("cc_server_open_connections"));
    assert!(text.contains("cc_server_compute_queue_depth"));
    handle.shutdown();
}

/// The boot sequence logs through the structured ring with a non-empty
/// trace id, and `/v1/logs` level/trace filters work over loopback.
#[test]
fn boot_logs_are_queryable_with_filters() {
    let dir = common::temp_dir("selfwatch_logs");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 2);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let resp = client.get("/v1/logs").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(field(&v, "level").and_then(as_str), Some("info"));
    let Some(Value::Array(logs)) = field(&v, "logs") else { panic!("logs array: {v:?}") };
    let boot = logs
        .iter()
        .find(|r| {
            field(r, "msg").and_then(as_str).is_some_and(|m| m.contains("cc_server listening on"))
        })
        .expect("boot line in the ring");
    let trace = field(boot, "trace").and_then(as_str).expect("trace key");
    assert_eq!(trace.len(), 16, "boot trace must be 16 hex digits, got '{trace}'");
    assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));

    // The trace filter isolates the boot correlation id.
    let v = client.get(&format!("/v1/logs?trace={trace}")).unwrap().json().unwrap();
    let Some(Value::Array(logs)) = field(&v, "logs") else { panic!("logs array") };
    assert!(!logs.is_empty());
    for r in logs {
        assert_eq!(field(r, "trace").and_then(as_str), Some(trace));
    }

    // Level filtering: boot lines are info, so a warn floor hides them.
    let v = client.get("/v1/logs?level=warn").unwrap().json().unwrap();
    let Some(Value::Array(logs)) = field(&v, "logs") else { panic!("logs array") };
    assert!(
        logs.iter().all(|r| {
            field(r, "msg").and_then(as_str).is_none_or(|m| !m.contains("listening on"))
        }),
        "warn floor must hide the info boot line"
    );

    // Unknown level and malformed trace ids are 400s, not surprises.
    assert_eq!(client.get("/v1/logs?level=bogus").unwrap().status, 400);
    assert_eq!(client.get("/v1/logs?trace=zzzz").unwrap().status, 400);
    handle.shutdown();
}
