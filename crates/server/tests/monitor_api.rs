//! `/v1/ingest` → `/v1/monitor` integration: a named monitor is created
//! on first ingest, stays quiet on stationary traffic, alarms on a
//! sustained shift, surfaces a resynthesis proposal, and shows up in the
//! Prometheus exposition — all over the real HTTP loopback path.

mod common;

use cc_server::json::{as_f64, get as field};
use cc_server::HttpClient;
use serde_json::Value;

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// An ingest body: the frame's columns plus monitor parameters.
fn ingest_body(frame: &cc_frame::DataFrame, extra: &[(&str, Value)]) -> Value {
    let Value::Object(mut pairs) = common::columns_body(frame) else {
        panic!("columns_body is an object")
    };
    for (k, v) in extra {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    Value::Object(pairs)
}

#[test]
fn ingest_monitor_alarm_roundtrip() {
    let dir = common::temp_dir("monitor_api");
    let profile = common::regime_profile(900, 0.0);
    common::write_profile(&dir, "main", &profile);
    let handle = common::start_server(&dir, 2);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let params = [
        ("monitor", Value::String("orders".into())),
        ("window", Value::Number(100.0)),
        ("detector", Value::String("cusum".into())),
        ("calibrate", Value::Number(3.0)),
        ("patience", Value::Number(2.0)),
    ];

    // Stationary traffic: creation + calibration + quiet armed windows.
    for i in 0..7 {
        let frame = common::regime_frame(100, 0.0);
        let resp = client.post_json("/v1/ingest", &ingest_body(&frame, &params)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(as_bool(field(&v, "created").unwrap()), Some(i == 0), "call {i}");
        assert_eq!(as_f64(field(&v, "rows").unwrap()), Some(100.0));
        assert_eq!(as_bool(field(&v, "alarm").unwrap()), Some(false), "stationary call {i}");
        let Some(Value::Array(windows)) = field(&v, "windows") else { panic!("windows") };
        assert_eq!(windows.len(), 1, "one tumbling window per 100-row batch");
    }

    // Status (single-monitor form: fields at top level, name injected).
    let resp = client.get("/v1/monitor?monitor=orders").unwrap();
    assert_eq!(resp.status, 200);
    let s = resp.json().unwrap();
    assert_eq!(field(&s, "monitor").and_then(cc_server::json::as_str), Some("orders"));
    assert_eq!(field(&s, "calibrated").and_then(as_bool), Some(true));
    assert_eq!(as_f64(field(&s, "rows_ingested").unwrap()), Some(700.0));
    assert_eq!(as_f64(field(&s, "windows_closed").unwrap()), Some(7.0));
    assert_eq!(as_f64(field(&s, "alarms_total").unwrap()), Some(0.0));

    // A sustained shift: the bias perturbs the learned invariant.
    let mut alarmed = false;
    let mut proposal_generation = None;
    for _ in 0..6 {
        let frame = common::regime_frame(100, 60.0);
        let resp = client.post_json("/v1/ingest", &ingest_body(&frame, &params)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        if as_bool(field(&v, "alarm").unwrap()) == Some(true) {
            alarmed = true;
        }
        let s = field(&v, "status").unwrap();
        if let Some(g) = field(s, "proposal_generation").and_then(as_f64) {
            proposal_generation = Some(g);
            break;
        }
    }
    assert!(alarmed, "sustained shift must alarm");
    assert_eq!(proposal_generation, Some(2.0), "patience 2 ⇒ a generation-2 proposal");

    // The full listing carries the monitor too.
    let resp = client.get("/v1/monitor").unwrap();
    let list = resp.json().unwrap();
    assert_eq!(as_f64(field(&list, "count").unwrap()), Some(1.0));
    let Some(Value::Array(monitors)) = field(&list, "monitors") else { panic!("monitors") };
    assert_eq!(field(&monitors[0], "monitor").and_then(cc_server::json::as_str), Some("orders"));
    assert_eq!(field(&monitors[0], "alarm").and_then(as_bool), Some(true));

    // Prometheus exposition exports the monitor series.
    let text = client.get("/metrics").unwrap().text().to_owned();
    assert!(text.contains("cc_server_monitors 1"), "{text}");
    assert!(text.contains("cc_server_monitor_rows_ingested_total{monitor=\"orders\"}"), "{text}");
    assert!(text.contains("cc_server_monitor_alarm{monitor=\"orders\"} 1"), "{text}");
    assert!(
        text.contains("cc_server_monitor_resynth_proposals_total{monitor=\"orders\"} 1"),
        "{text}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_connections_ingest_one_monitor_exactly() {
    // Four live connections race columnar batches into one monitor; the
    // ticketed commit path must admit every batch exactly once: the
    // reported start rows tile the stream with no gap or overlap, and
    // the lifetime counters reconcile to the exact row total.
    let dir = common::temp_dir("monitor_api_conc");
    common::write_profile(&dir, "main", &common::regime_profile(900, 0.0));
    let handle = common::start_server(&dir, 4);
    let params = [
        ("monitor", Value::String("conc".into())),
        ("window", Value::Number(100.0)),
        ("detector", Value::String("cusum".into())),
        ("calibrate", Value::Number(2.0)),
        ("patience", Value::Number(2.0)),
        ("threads", Value::Number(2.0)),
    ];

    // Create with one serial ingest so `created` is checked race-free.
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let frame = common::regime_frame(100, 0.0);
    let resp = client.post_json("/v1/ingest", &ingest_body(&frame, &params)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(as_bool(field(&v, "created").unwrap()), Some(true));
    assert_eq!(as_f64(field(&v, "start_row").unwrap()), Some(0.0));

    // 4 connections × 5 batches × 100 rows, all stationary.
    let start_rows = std::sync::Mutex::new(vec![0u64]);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut conn = HttpClient::connect(handle.addr()).unwrap();
                for _ in 0..5 {
                    let frame = common::regime_frame(100, 0.0);
                    let resp = conn.post_json("/v1/ingest", &ingest_body(&frame, &params)).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let v = resp.json().unwrap();
                    assert_eq!(as_f64(field(&v, "rows").unwrap()), Some(100.0));
                    assert_eq!(as_bool(field(&v, "alarm").unwrap()), Some(false));
                    let row = as_f64(field(&v, "start_row").unwrap()).unwrap() as u64;
                    start_rows.lock().unwrap().push(row);
                }
            });
        }
    });

    // Admission tiles the stream: start rows are exactly {0, 100, …, 2000}.
    let mut rows = start_rows.into_inner().unwrap();
    rows.sort_unstable();
    let want: Vec<u64> = (0..21).map(|i| i * 100).collect();
    assert_eq!(rows, want, "admitted spans must tile with no gap or double-count");

    // Exact reconciliation through both read paths.
    let resp = client.get("/v1/monitor?monitor=conc").unwrap();
    let s = resp.json().unwrap();
    assert_eq!(as_f64(field(&s, "rows_ingested").unwrap()), Some(2100.0));
    assert_eq!(as_f64(field(&s, "windows_closed").unwrap()), Some(21.0));
    assert_eq!(as_f64(field(&s, "alarms_total").unwrap()), Some(0.0));
    let text = client.get("/metrics").unwrap().text().to_owned();
    assert!(
        text.contains("cc_server_monitor_rows_ingested_total{monitor=\"conc\"} 2100"),
        "{text}"
    );

    // The monitor is still a working detector after the race: a
    // sustained shift on the same connection must alarm.
    let mut alarmed = false;
    for _ in 0..6 {
        let frame = common::regime_frame(100, 60.0);
        let resp = client.post_json("/v1/ingest", &ingest_body(&frame, &params)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        if as_bool(field(&resp.json().unwrap(), "alarm").unwrap()) == Some(true) {
            alarmed = true;
            break;
        }
    }
    assert!(alarmed, "sustained shift must alarm after concurrent ingest");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_rejects_bad_requests() {
    let dir = common::temp_dir("monitor_api_bad");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let frame = common::regime_frame(10, 0.0);

    // No monitor name.
    let resp = client.post_json("/v1/ingest", &ingest_body(&frame, &[])).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("monitor"), "{}", resp.text());

    // Invalid geometry (stride > window).
    let resp = client
        .post_json(
            "/v1/ingest",
            &ingest_body(
                &frame,
                &[
                    ("monitor", Value::String("bad".into())),
                    ("window", Value::Number(10.0)),
                    ("stride", Value::Number(20.0)),
                ],
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("stride"), "{}", resp.text());

    // Unknown detector.
    let resp = client
        .post_json(
            "/v1/ingest",
            &ingest_body(
                &frame,
                &[
                    ("monitor", Value::String("bad".into())),
                    ("detector", Value::String("magic".into())),
                ],
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("detector"), "{}", resp.text());

    // Unknown profile.
    let resp = client
        .post_json(
            "/v1/ingest",
            &ingest_body(
                &frame,
                &[
                    ("monitor", Value::String("bad".into())),
                    ("profile", Value::String("nope".into())),
                ],
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 404);

    // Nothing was created by the failed attempts.
    let resp = client.get("/v1/monitor").unwrap();
    assert_eq!(as_f64(field(&resp.json().unwrap(), "count").unwrap()), Some(0.0));

    // Unknown monitor lookup is a 404; wrong methods are 405s.
    assert_eq!(client.get("/v1/monitor?monitor=ghost").unwrap().status, 404);
    assert_eq!(client.get("/v1/ingest").unwrap().status, 405);
    assert_eq!(client.post_json("/v1/monitor", &Value::Object(vec![])).unwrap().status, 405);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn monitor_delete_frees_the_slot() {
    let dir = common::temp_dir("monitor_api_delete");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let frame = common::regime_frame(10, 0.0);

    let resp = client
        .post_json("/v1/ingest", &ingest_body(&frame, &[("monitor", Value::String("tmp".into()))]))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(handle.monitors().len(), 1);

    // DELETE needs a name, drops the monitor once, then 404s.
    let resp = client.request("DELETE", "/v1/monitor", b"").unwrap();
    assert_eq!(resp.status, 400);
    let resp = client.request("DELETE", "/v1/monitor?monitor=tmp", b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        field(&resp.json().unwrap(), "deleted").and_then(cc_server::json::as_str),
        Some("tmp")
    );
    assert_eq!(handle.monitors().len(), 0);
    assert_eq!(client.request("DELETE", "/v1/monitor?monitor=tmp", b"").unwrap().status, 404);

    // Re-ingesting under the freed name re-creates from scratch.
    let resp = client
        .post_json("/v1/ingest", &ingest_body(&frame, &[("monitor", Value::String("tmp".into()))]))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(as_bool(field(&resp.json().unwrap(), "created").unwrap()), Some(true));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_windows_match_library_drift_bitwise() {
    // The drift each HTTP-closed window reports must be bit-identical to
    // DriftAggregator::Mean over the library plan's violations on the
    // same rows (JSON is shortest-round-trip in both directions).
    let dir = common::temp_dir("monitor_api_bitid");
    let profile = common::regime_profile(900, 0.0);
    common::write_profile(&dir, "main", &profile);
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let plan = conformance::CompiledProfile::compile(&profile);

    let params = [("monitor", Value::String("bits".into())), ("window", Value::Number(128.0))];
    for step in 0..3 {
        let frame = common::regime_frame(128, step as f64 * 2.0);
        let resp = client.post_json("/v1/ingest", &ingest_body(&frame, &params)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = resp.json().unwrap();
        let Some(Value::Array(windows)) = field(&v, "windows") else { panic!("windows") };
        assert_eq!(windows.len(), 1);
        let got = field(&windows[0], "drift").and_then(as_f64).unwrap();
        let want = conformance::DriftAggregator::Mean.aggregate(&plan.violations(&frame).unwrap());
        assert_eq!(got.to_bits(), want.to_bits(), "window {step}");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
