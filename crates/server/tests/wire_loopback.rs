//! Wire-negotiation loopback tests: the binary columnar path must be
//! bit-identical to JSON on the same batch — on both connection cores —
//! and every Content-Type/Accept combination must interoperate.

mod common;

use cc_server::wire::{self, CONTENT_TYPE_COLUMNAR};
use cc_server::HttpClient;
use conformance::CompiledProfile;
use serde_json::Value;

/// Pulls `"violations"` out of a JSON `/v1/check` reply as raw f64s.
fn json_violations(resp: &cc_server::ClientResponse) -> Vec<f64> {
    let v = resp.json().unwrap();
    let Some(Value::Array(items)) = cc_server::json::get(&v, "violations") else {
        panic!("response lacks violations: {v:?}");
    };
    items.iter().map(|x| cc_server::json::as_f64(x).expect("numeric violation")).collect()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn columnar_check_bit_identical_to_json() {
    for io in common::io_modes() {
        columnar_check_bit_identical_to_json_on(io);
    }
}

fn columnar_check_bit_identical_to_json_on(io: cc_server::IoMode) {
    let dir = common::temp_dir(&format!("wirebitid_{io:?}"));
    let profile = common::regime_profile(900, 0.0);
    common::write_profile(&dir, "main", &profile);
    let handle = common::start_server_io(&dir, 2, io);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let plan = CompiledProfile::compile(&profile);

    // Batches straddling the evaluation block size plus the empty batch.
    for n in [0, 1, 511, 513, 700] {
        let serve = common::regime_frame(n, 3.0);
        let lib = bits(&plan.violations(&serve).unwrap());
        let frame_bytes = wire::encode_frame(&serve);

        // JSON request → JSON reply (the baseline).
        let resp = client.post_json("/v1/check", &common::columns_body(&serve)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(bits(&json_violations(&resp)), lib, "json/json n={n}");

        // Columnar request → columnar reply (the fast path end to end).
        let resp = client.post_columnar("/v1/check", &serve).unwrap();
        assert_eq!(resp.status, 200);
        let ct = resp.headers.iter().find(|(k, _)| k == "content-type").map(|(_, v)| v.as_str());
        assert_eq!(ct, Some(CONTENT_TYPE_COLUMNAR), "binary reply mislabeled");
        assert_eq!(bits(&wire::decode_violations(&resp.body).unwrap()), lib, "col/col n={n}");

        // Columnar request → JSON reply (no Accept header).
        let resp = client
            .request_with(
                "POST",
                "/v1/check",
                &frame_bytes,
                &[("content-type", CONTENT_TYPE_COLUMNAR)],
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(bits(&json_violations(&resp)), lib, "col/json n={n}");

        // JSON request → columnar reply (Accept only).
        let body = serde_json::to_string(&common::columns_body(&serve)).unwrap();
        let resp = client
            .request_with(
                "POST",
                "/v1/check",
                body.as_bytes(),
                &[("accept", CONTENT_TYPE_COLUMNAR)],
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(bits(&wire::decode_violations(&resp.body).unwrap()), lib, "json/col n={n}");
    }

    // Columnar bodies carry no JSON fields, so handler knobs ride the
    // query string: an explicit profile + thread count still works …
    let serve = common::regime_frame(64, 3.0);
    let resp = client.post_columnar("/v1/check?profile=main&threads=2", &serve).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        bits(&wire::decode_violations(&resp.body).unwrap()),
        bits(&plan.violations(&serve).unwrap()),
    );
    // … and a bad knob is a clean 400, not a fallback.
    let resp = client.post_columnar("/v1/check?threads=lots", &serve).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());

    // Columnar ingest with monitor geometry via query params: windows
    // close and report, same as the JSON path.
    let resp = client
        .post_columnar(
            "/v1/ingest?monitor=m&profile=main&window=32&stride=32",
            &common::regime_frame(96, 3.0),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    let Some(Value::Array(windows)) = cc_server::json::get(&v, "windows") else {
        panic!("ingest reply lacks windows: {v:?}");
    };
    assert_eq!(windows.len(), 3, "96 rows over 32-row tumbling windows");

    // The wire metric saw both encodings.
    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text();
    assert!(text.contains("cc_server_wire_requests_total{wire=\"columnar\"}"), "{text}");
    assert!(text.contains("cc_server_wire_requests_total{wire=\"json\"}"), "{text}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
