//! Tracing over the real loopback path: trace-id echo on every wire
//! combination, phase spans that reconcile against request wall time,
//! `/v1/trace` filters, ingest-pipeline spans tagged with the monitor
//! name, and the `--trace-buffer 0` byte-identity guarantee.

mod common;

use cc_server::json::{as_f64, as_str, get as field};
use cc_server::wire::CONTENT_TYPE_COLUMNAR;
use cc_server::{HttpClient, IoMode, ProfileRegistry, Server, ServerConfig, ServerHandle};
use serde_json::Value;
use std::time::Instant;

/// Starts a server with an explicit flight-recorder capacity (the
/// common helper always uses the default).
fn start_server_traced(dir: &std::path::Path, io: IoMode, trace_buffer: usize) -> ServerHandle {
    let registry = ProfileRegistry::from_dir(dir).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        io,
        trace_buffer,
        ..ServerConfig::default()
    };
    Server::start(config, registry).unwrap()
}

fn check_body(rows: usize) -> Vec<u8> {
    let frame = common::regime_frame(rows, 0.0);
    serde_json::to_string(&common::columns_body(&frame)).unwrap().into_bytes()
}

fn trace_header_of(resp: &cc_server::ClientResponse) -> Option<&str> {
    resp.headers.iter().find(|(n, _)| n == "x-ccsynth-trace").map(|(_, v)| v.as_str())
}

/// The client's token comes back verbatim on all four
/// content-type × accept combinations of `/v1/check`.
#[test]
fn trace_id_echoes_on_every_wire_combo() {
    let dir = common::temp_dir("trace_echo");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    for io in common::io_modes() {
        let handle = start_server_traced(&dir, io, cc_trace::DEFAULT_BUFFER);
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let json_body = check_body(64);
        let columnar_body = cc_server::wire::encode_frame(&common::regime_frame(64, 0.0));
        const JSON: &str = "application/json";
        for (ct, accept) in [
            (JSON, JSON),
            (JSON, CONTENT_TYPE_COLUMNAR),
            (CONTENT_TYPE_COLUMNAR, JSON),
            (CONTENT_TYPE_COLUMNAR, CONTENT_TYPE_COLUMNAR),
        ] {
            let token = format!("cafe{}{}", ct.len(), accept.len());
            let body: &[u8] = if ct == JSON { &json_body } else { &columnar_body };
            let resp = client
                .request_with(
                    "POST",
                    "/v1/check",
                    body,
                    &[("content-type", ct), ("accept", accept), ("x-ccsynth-trace", &token)],
                )
                .unwrap();
            assert_eq!(
                resp.status,
                200,
                "{ct} → {accept}: {}",
                String::from_utf8_lossy(&resp.body)
            );
            assert_eq!(
                trace_header_of(&resp),
                Some(token.as_str()),
                "{ct} → {accept} must echo the client token"
            );
        }
        // No token supplied: the server generates one (16 hex digits).
        let resp = client.request("POST", "/v1/check", &json_body).unwrap();
        let generated = trace_header_of(&resp).expect("generated trace id");
        assert_eq!(generated.len(), 16, "generated id is 16 hex digits, got '{generated}'");
        assert!(generated.chars().all(|c| c.is_ascii_hexdigit()));
        handle.shutdown();
    }
}

/// The four request phases land in `/v1/trace`, and their durations sum
/// to no more than the wall time the client observed for connect +
/// request — on both connection cores.
#[test]
fn phase_spans_sum_within_wall_time() {
    let dir = common::temp_dir("trace_wall");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    for io in common::io_modes() {
        let handle = start_server_traced(&dir, io, cc_trace::DEFAULT_BUFFER);
        let token = format!("feed{:012x}", std::process::id());
        let body = check_body(2048);
        let wall_started = Instant::now();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let resp = client
            .request_with("POST", "/v1/check", &body, &[("x-ccsynth-trace", &token)])
            .unwrap();
        let wall_us = wall_started.elapsed().as_micros() as u64;
        assert_eq!(resp.status, 200);

        let trace = client.get("/v1/trace?endpoint=/v1/check&top=64&limit=4096").unwrap();
        assert_eq!(trace.status, 200);
        let v = trace.json().unwrap();
        let Some(Value::Array(slowest)) = field(&v, "slowest") else { panic!("slowest table") };
        let row = slowest
            .iter()
            .find(|r| field(r, "trace").and_then(as_str) == Some(token.as_str()))
            .unwrap_or_else(|| panic!("trace {token} missing from slow table ({io:?})"));
        let phases = field(row, "phases").expect("phase breakdown");
        let mut sum = 0.0;
        for phase in ["parse", "queue_wait", "handle", "write"] {
            let dur = field(phases, phase)
                .and_then(as_f64)
                .unwrap_or_else(|| panic!("phase {phase} missing ({io:?})"));
            assert!(dur >= 0.0);
            sum += dur;
        }
        assert_eq!(field(row, "endpoint").and_then(as_str), Some("/v1/check"));
        assert_eq!(field(row, "total_us").and_then(as_f64), Some(sum));
        // The phases are disjoint intervals inside the request's wall
        // window; tiny slack absorbs the two clocks' rounding.
        assert!(
            sum <= wall_us as f64 + 500.0,
            "phase sum {sum}µs exceeds request wall time {wall_us}µs ({io:?})"
        );
        handle.shutdown();
    }
}

/// `/v1/ingest` spans carry the request's trace id and the monitor's
/// name; window closes surface as `window_close` events.
#[test]
fn ingest_pipeline_spans_are_tagged_with_monitor_name() {
    let dir = common::temp_dir("trace_ingest");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = start_server_traced(&dir, IoMode::Auto, cc_trace::DEFAULT_BUFFER);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let frame = common::regime_frame(120, 0.0);
    let Value::Object(mut pairs) = common::columns_body(&frame) else { panic!("object body") };
    pairs.push(("monitor".to_owned(), Value::String("traced_orders".into())));
    pairs.push(("window".to_owned(), Value::Number(100.0)));
    let body = serde_json::to_string(&Value::Object(pairs)).unwrap().into_bytes();
    let token = "beef000000000001";
    let resp =
        client.request_with("POST", "/v1/ingest", &body, &[("x-ccsynth-trace", token)]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    // Satellite: the ingest reply carries the monitor's generation.
    assert!(field(&v, "generation").and_then(as_f64).is_some(), "ingest reply lacks generation");

    let trace = client.get("/v1/trace?monitor=traced_orders&limit=4096").unwrap();
    let v = trace.json().unwrap();
    let Some(Value::Array(spans)) = field(&v, "spans") else { panic!("span list") };
    let mut seen = Vec::new();
    for s in spans {
        assert_eq!(
            field(s, "tag").and_then(as_str),
            Some("traced_orders"),
            "monitor filter must only return spans tagged with the monitor"
        );
        let phase = field(s, "phase").and_then(as_str).unwrap().to_owned();
        if field(s, "trace").and_then(as_str) == Some(token) || phase == "window_close" {
            seen.push(phase);
        }
    }
    for phase in ["score", "admission_wait", "turn_wait", "commit", "window_close"] {
        assert!(seen.iter().any(|p| p == phase), "missing ingest phase {phase} in {seen:?}");
    }
    handle.shutdown();
}

/// `min_us` filtering drops sub-threshold spans.
#[test]
fn trace_min_us_filter_applies() {
    let dir = common::temp_dir("trace_filter");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = start_server_traced(&dir, IoMode::Auto, cc_trace::DEFAULT_BUFFER);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let body = check_body(256);
    for _ in 0..3 {
        assert_eq!(client.request("POST", "/v1/check", &body).unwrap().status, 200);
    }
    let v = client.get("/v1/trace?endpoint=/v1/check&min_us=0").unwrap().json().unwrap();
    let all = field(&v, "matched").and_then(as_f64).unwrap();
    assert!(all >= 4.0, "expected at least one request's worth of spans, got {all}");
    // An hour-long floor matches nothing.
    let v = client.get("/v1/trace?endpoint=/v1/check&min_us=3600000000").unwrap().json().unwrap();
    assert_eq!(field(&v, "matched").and_then(as_f64), Some(0.0));
    let Some(Value::Array(spans)) = field(&v, "spans") else { panic!("span list") };
    assert!(spans.is_empty());
    handle.shutdown();
}

/// With `trace_buffer: 0` the `/v1/check` response is byte-identical to
/// the traced server's body with no trace header — tracing off means
/// *off*, not differently-shaped.
#[test]
fn disabled_tracing_is_byte_identical() {
    let dir = common::temp_dir("trace_disabled");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    for io in common::io_modes() {
        let traced = start_server_traced(&dir, io, cc_trace::DEFAULT_BUFFER);
        let untraced = start_server_traced(&dir, io, 0);
        let body = check_body(512);
        let mut on = HttpClient::connect(traced.addr()).unwrap();
        let mut off = HttpClient::connect(untraced.addr()).unwrap();
        let with = on.request("POST", "/v1/check", &body).unwrap();
        let without = off.request("POST", "/v1/check", &body).unwrap();
        assert_eq!(with.status, 200);
        assert_eq!(without.status, 200);
        assert!(trace_header_of(&with).is_some(), "traced server must stamp the header");
        assert!(trace_header_of(&without).is_none(), "disabled server must not");
        assert_eq!(with.body, without.body, "bodies must be byte-identical ({io:?})");
        // Header sets differ by exactly the trace header.
        let strip = |r: &cc_server::ClientResponse| {
            r.headers.iter().filter(|(n, _)| n != "x-ccsynth-trace").cloned().collect::<Vec<_>>()
        };
        assert_eq!(strip(&with), strip(&without), "only the trace header may differ ({io:?})");
        // And the disabled daemon reports itself disabled on /v1/trace.
        let v = off.get("/v1/trace").unwrap().json().unwrap();
        assert_eq!(field(&v, "enabled"), Some(&Value::Bool(false)));
        traced.shutdown();
        untraced.shutdown();
    }
}

/// Satellites: `/healthz` reports `uptime_seconds`; `/v1/monitor`
/// carries the generation; `/metrics` exposes the phase histograms and
/// the build-info gauge.
#[test]
fn observability_satellites_over_loopback() {
    let dir = common::temp_dir("trace_satellites");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = start_server_traced(&dir, IoMode::Auto, cc_trace::DEFAULT_BUFFER);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let health = client.get("/healthz").unwrap().json().unwrap();
    let uptime = field(&health, "uptime_seconds").and_then(as_f64).expect("uptime_seconds");
    assert!(uptime >= 0.0);

    let frame = common::regime_frame(100, 0.0);
    let Value::Object(mut pairs) = common::columns_body(&frame) else { panic!("object body") };
    pairs.push(("monitor".to_owned(), Value::String("gen_probe".into())));
    let resp = client.post_json("/v1/ingest", &Value::Object(pairs)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let status = client.get("/v1/monitor?monitor=gen_probe").unwrap().json().unwrap();
    assert!(
        field(&status, "generation").and_then(as_f64).is_some(),
        "/v1/monitor must carry the generation"
    );

    let metrics = client.get("/metrics").unwrap();
    let text = metrics.text();
    for needle in [
        "cc_server_phase_seconds_bucket{phase=\"handle\"",
        "cc_server_phase_seconds_count{phase=\"parse\"",
        "cc_monitor_phase_seconds_bucket{phase=\"score\"",
        "cc_server_build_info{version=",
    ] {
        assert!(text.contains(needle), "metrics exposition lacks {needle}");
    }
    handle.shutdown();
}
