//! Fleet + /v2 API integration over real sockets: a 2-shard fleet whose
//! coordinator serves a merged monitor byte-identical to a single node
//! fed the same interleaved stream; `/v1` aliases that stay
//! byte-compatible while wearing `Deprecation`/`Link` headers; the
//! structured error envelope on every non-2xx JSON response; and
//! monitor-name semantics (400 grammar / 404 absent / reserved writes)
//! consistent across both API versions.

mod common;

use cc_server::http::error_code;
use cc_server::json::{as_f64, as_str, get as field};
use cc_server::{HttpClient, ProfileRegistry, Role, Server, ServerConfig, ServerHandle};
use serde_json::Value;
use std::time::{Duration, Instant};

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn header<'a>(resp: &'a cc_server::ClientResponse, name: &str) -> Option<&'a str> {
    resp.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// An ingest body: the frame's columns plus monitor parameters.
fn ingest_body(frame: &cc_frame::DataFrame, extra: &[(&str, Value)]) -> Value {
    let Value::Object(mut pairs) = common::columns_body(frame) else {
        panic!("columns_body is an object")
    };
    for (k, v) in extra {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    Value::Object(pairs)
}

fn start_with_role(dir: &std::path::Path, role: Role, shards: Vec<String>) -> ServerHandle {
    let registry = ProfileRegistry::from_dir(dir).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        role,
        shard_addrs: shards,
        pull_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    Server::start(config, registry).unwrap()
}

/// Tumbling-window parameters shared by every node in a test fleet: one
/// epoch per 100-row batch, so epoch `g` is owned by shard `g mod N`.
fn monitor_params() -> [(&'static str, Value); 4] {
    [
        ("window", Value::Number(100.0)),
        ("detector", Value::String("cusum".into())),
        ("calibrate", Value::Number(3.0)),
        ("patience", Value::Number(2.0)),
    ]
}

#[test]
fn two_shard_coordinator_merges_bit_identical_to_single_node() {
    let dir = common::temp_dir("fleet_api");
    common::write_profile(&dir, "main", &common::regime_profile(900, 0.0));
    let shard_a = start_with_role(&dir, Role::Shard, vec![]);
    let shard_b = start_with_role(&dir, Role::Shard, vec![]);
    let single = start_with_role(&dir, Role::Standalone, vec![]);
    let coord = start_with_role(
        &dir,
        Role::Coordinator,
        vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
    );

    let mut shard_clients = [
        HttpClient::connect(shard_a.addr()).unwrap(),
        HttpClient::connect(shard_b.addr()).unwrap(),
    ];
    let mut single_client = HttpClient::connect(single.addr()).unwrap();
    let mut coord_client = HttpClient::connect(coord.addr()).unwrap();

    // 7 stationary epochs, then a sustained shift: epoch g to shard
    // g mod 2 over the /v2 resource route, the whole stream to the
    // single-node oracle in order.
    let params = monitor_params();
    for g in 0..13 {
        let frame = common::regime_frame(100, if g < 7 { 0.0 } else { 60.0 });
        let body = ingest_body(&frame, &params);
        let resp = shard_clients[g % 2].post_json("/v2/monitors/orders/ingest", &body).unwrap();
        assert_eq!(resp.status, 200, "shard ingest {g}: {}", resp.text());
        let resp = single_client.post_json("/v2/monitors/orders/ingest", &body).unwrap();
        assert_eq!(resp.status, 200, "single ingest {g}: {}", resp.text());
    }

    let want = single_client.get("/v2/monitors/orders").unwrap();
    assert_eq!(want.status, 200);
    let w = want.json().unwrap();
    assert_eq!(as_f64(field(&w, "windows_closed").unwrap()), Some(13.0));
    assert_eq!(as_bool(field(&w, "alarm").unwrap()), Some(true), "{}", want.text());

    // The coordinator pulls shard deltas on its own clock: poll until
    // the merged monitor has absorbed all 13 epochs.
    let deadline = Instant::now() + Duration::from_secs(30);
    let got = loop {
        let resp = coord_client.get("/v2/monitors/orders").unwrap();
        if resp.status == 200 {
            let v = resp.json().unwrap();
            if as_f64(field(&v, "windows_closed").unwrap()) == Some(13.0) {
                break resp;
            }
        }
        assert!(Instant::now() < deadline, "coordinator never caught up: {}", resp.text());
        std::thread::sleep(Duration::from_millis(50));
    };
    // The headline invariant, end to end over HTTP: the merged status is
    // byte-identical to the single node's.
    assert_eq!(got.text(), want.text(), "merged status must match the single node byte-for-byte");

    // The merged monitor also rides the listing, and healthz names the role.
    let list = coord_client.get("/v2/monitors").unwrap().json().unwrap();
    assert_eq!(as_f64(field(&list, "count").unwrap()), Some(1.0));
    let health = coord_client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(field(&health, "role").and_then(as_str), Some("coordinator"));

    // /v2/fleet/shards: both shards polled without error, fully caught up.
    let fleet = coord_client.get("/v2/fleet/shards").unwrap().json().unwrap();
    assert_eq!(field(&fleet, "role").and_then(as_str), Some("coordinator"));
    let Some(Value::Array(shards)) = field(&fleet, "shards") else { panic!("shards") };
    assert_eq!(shards.len(), 2);
    for s in shards {
        assert!(as_f64(field(s, "polls").unwrap()).unwrap() >= 1.0);
        assert_eq!(
            as_f64(field(s, "errors").unwrap()),
            Some(0.0),
            "{}",
            serde_json::to_string(s).unwrap()
        );
        assert_eq!(as_f64(field(s, "lag_windows").unwrap()), Some(0.0));
    }
    let Some(Value::Array(monitors)) = field(&fleet, "monitors") else { panic!("monitors") };
    assert_eq!(field(&monitors[0], "monitor").and_then(as_str), Some("orders"));
    assert_eq!(as_f64(field(&monitors[0], "epochs_merged").unwrap()), Some(13.0));

    // Fleet series ride the coordinator's Prometheus exposition.
    let text = coord_client.get("/metrics").unwrap().text().to_owned();
    assert!(text.contains("ccsynth_fleet_shard_polls_total{shard=\"0\"}"), "{text}");
    assert!(text.contains("ccsynth_fleet_epochs_merged_total{monitor=\"orders\"} 13"), "{text}");

    // Role gating: coordinators don't ingest; only shards export deltas;
    // only coordinators absorb pushes.
    let frame = common::regime_frame(100, 0.0);
    let resp = coord_client
        .post_json("/v2/monitors/orders/ingest", &ingest_body(&frame, &params))
        .unwrap();
    assert_eq!(resp.status, 409, "{}", resp.text());
    assert_eq!(coord_client.get("/v2/monitors/orders/deltas?since=0").unwrap().status, 409);
    let resp = shard_clients[0].get("/v2/monitors/orders/deltas?since=0").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(!resp.body.is_empty(), "delta export carries the cc_state envelope");
    assert_eq!(
        shard_clients[0].request("POST", "/v2/fleet/shards/0/deltas", &resp.body).unwrap().status,
        409,
        "shards must not absorb pushes"
    );

    coord.shutdown();
    single.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_aliases_stay_byte_compatible_and_advertise_their_successors() {
    let dir = common::temp_dir("fleet_api_alias");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let frame = common::regime_frame(100, 0.0);
    let resp = client
        .post_json(
            "/v1/ingest",
            &ingest_body(&frame, &[("monitor", Value::String("orders".into()))]),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Each alias answers with the exact bytes of its /v2 successor —
    // plus Deprecation and a Link naming the replacement.
    let pairs = [
        ("/v1/monitor", "/v2/monitors"),
        ("/v1/monitor?monitor=orders", "/v2/monitors/orders"),
        ("/v1/profiles", "/v2/profiles"),
    ];
    for (v1, v2) in pairs {
        let old = client.get(v1).unwrap();
        let new = client.get(v2).unwrap();
        assert_eq!(old.status, new.status, "{v1} vs {v2}");
        assert_eq!(old.text(), new.text(), "{v1} must stay byte-compatible with {v2}");
        assert_eq!(header(&old, "deprecation"), Some("true"), "{v1}");
        let link = header(&old, "link").unwrap_or_default();
        assert!(link.contains("rel=\"successor-version\""), "{v1}: {link}");
        assert!(link.contains("/v2/"), "{v1}: {link}");
        assert_eq!(header(&new, "deprecation"), None, "{v2} is not deprecated");
    }

    // The same holds for a POST alias with a body.
    let check = common::columns_body(&common::regime_frame(50, 0.0));
    let old = client.post_json("/v1/check", &check).unwrap();
    let new = client.post_json("/v2/check", &check).unwrap();
    assert_eq!(old.status, 200, "{}", old.text());
    assert_eq!(old.text(), new.text());
    assert_eq!(header(&old, "deprecation"), Some("true"));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_non_2xx_wears_the_error_envelope() {
    let dir = common::temp_dir("fleet_api_err");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let empty = Value::Object(vec![]);

    let cases: Vec<(u16, cc_server::ClientResponse)> = vec![
        (404, client.get("/v1/nope").unwrap()),
        (404, client.get("/v2/monitors/ghost").unwrap()),
        (404, client.get("/v2/profiles/ghost").unwrap()),
        (404, client.request("DELETE", "/v2/monitors/ghost", b"").unwrap()),
        (405, client.get("/v1/ingest").unwrap()),
        (405, client.post_json("/v2/monitors", &empty).unwrap()),
        (400, client.get("/v2/monitors/bad%20name").unwrap()),
        (400, client.request("DELETE", "/v1/monitor", b"").unwrap()),
        (400, client.post_json("/v2/monitors/orders/ingest", &empty).unwrap()),
        (
            400,
            client
                .post_json("/v1/ingest", &common::columns_body(&common::regime_frame(10, 0.0)))
                .unwrap(),
        ),
        (400, client.request("POST", "/v1/check", b"{not json").unwrap()),
        (409, client.get("/v2/monitors/orders/deltas?since=0").unwrap()),
        (409, client.request("POST", "/v2/fleet/shards/0/deltas", b"").unwrap()),
    ];
    for (want, resp) in cases {
        assert_eq!(resp.status, want, "{}", resp.text());
        let v = resp
            .json()
            .unwrap_or_else(|e| panic!("{want}: non-JSON error body {e:?}: {}", resp.text()));
        let err = field(&v, "error")
            .unwrap_or_else(|| panic!("{want}: no error envelope: {}", resp.text()));
        assert_eq!(field(err, "code").and_then(as_str), Some(error_code(want)), "{}", resp.text());
        let msg = field(err, "message").and_then(as_str).unwrap_or_default();
        assert!(!msg.is_empty(), "{want}: empty error message: {}", resp.text());
    }

    // 405s also say which methods would work.
    let resp = client.post_json("/v2/monitors", &empty).unwrap();
    assert!(header(&resp, "allow").unwrap_or_default().contains("GET"), "{:?}", resp.headers);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn name_semantics_agree_across_api_versions() {
    let dir = common::temp_dir("fleet_api_names");
    common::write_profile(&dir, "main", &common::regime_profile(600, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Grammar violations are 400 on both versions, reads and writes
    // alike, with identical bodies through the shared core.
    for method in ["GET", "DELETE"] {
        let old = client.request(method, "/v1/monitor?monitor=bad%20name", b"").unwrap();
        let new = client.request(method, "/v2/monitors/bad%20name", b"").unwrap();
        assert_eq!(old.status, 400, "{method}: {}", old.text());
        assert_eq!(new.status, 400, "{method}: {}", new.text());
        assert_eq!(old.text(), new.text(), "{method}");
    }

    // Valid-but-absent names are 404s: the grammar is fine, the
    // resource just isn't there.
    assert_eq!(client.get("/v1/monitor?monitor=ghost").unwrap().status, 404);
    assert_eq!(client.get("/v2/monitors/ghost").unwrap().status, 404);

    // Reserved `__`-prefixed names reject writes (the server owns
    // them) but allow reads — never a grammar 400.
    let resp = client.request("DELETE", "/v2/monitors/__self", b"").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("reserved"), "{}", resp.text());
    assert_eq!(client.request("DELETE", "/v1/monitor?monitor=__self", b"").unwrap().status, 400);
    let read = client.get("/v2/monitors/__self").unwrap();
    assert_ne!(read.status, 400, "reserved reads pass the name gate: {}", read.text());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
