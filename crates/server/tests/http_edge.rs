//! HTTP-layer edge cases, at two levels: the incremental parser driven
//! byte-by-byte (split reads, pipelining, size limits, malformed bodies)
//! and a live server poked with raw sockets (abrupt disconnects,
//! pipelined requests over one connection, error statuses on the wire).

mod common;

use cc_server::http::DEFAULT_MAX_BODY_BYTES;
use cc_server::{HttpClient, ParseError, RequestParser};
use std::io::{Read, Write};
use std::net::TcpStream;

// ---------------------------------------------------------------------------
// Parser level.

#[test]
fn request_split_across_arbitrary_read_boundaries() {
    let raw = b"POST /v1/check?top=2 HTTP/1.1\r\nhost: x\r\ncontent-length: 11\r\n\r\nhello world";
    // Every prefix split point: feed [..k) then [k..); the request must
    // parse identically, and never early.
    for k in 0..raw.len() {
        let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        p.feed(&raw[..k]);
        let early = p.try_next().unwrap();
        if k < raw.len() {
            assert!(early.is_none(), "complete request claimed after {k}/{} bytes", raw.len());
        }
        p.feed(&raw[k..]);
        let req = p.try_next().unwrap().expect("complete after all bytes");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/check");
        assert_eq!(req.query_param("top"), Some("2"));
        assert_eq!(req.body, b"hello world");
        assert!(p.is_empty());
    }
    // And fully byte-by-byte.
    let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    let mut parsed = 0;
    for &b in raw.iter() {
        p.feed(&[b]);
        if p.try_next().unwrap().is_some() {
            parsed += 1;
        }
    }
    assert_eq!(parsed, 1);
}

#[test]
fn pipelined_requests_parse_in_order() {
    let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    p.feed(b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/check HTTP/1.1\r\ncontent-length: 2\r\n\r\nokGET /metrics HTTP/1.1\r\n\r\n");
    let a = p.try_next().unwrap().unwrap();
    let b = p.try_next().unwrap().unwrap();
    let c = p.try_next().unwrap().unwrap();
    assert_eq!(
        (a.path.as_str(), b.path.as_str(), c.path.as_str()),
        ("/healthz", "/v1/check", "/metrics")
    );
    assert_eq!(b.body, b"ok");
    assert!(p.try_next().unwrap().is_none());
    assert!(p.is_empty());
}

#[test]
fn oversized_headers_rejected_incrementally() {
    let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    p.feed(b"GET / HTTP/1.1\r\n");
    // Keep feeding header lines without ever terminating the block; the
    // parser must flag the overflow without waiting for the terminator.
    let line = format!("x-filler: {}\r\n", "y".repeat(998));
    let mut result = Ok(None);
    for _ in 0..20 {
        p.feed(line.as_bytes());
        result = p.try_next();
        if result.is_err() {
            break;
        }
    }
    assert_eq!(result, Err(ParseError::HeadersTooLarge));
    // A terminated-but-huge header block is rejected too.
    let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    p.feed(format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "y".repeat(17_000)).as_bytes());
    assert_eq!(p.try_next(), Err(ParseError::HeadersTooLarge));
}

#[test]
fn zero_length_and_bounded_bodies() {
    let mut p = RequestParser::new(16);
    p.feed(b"POST /v1/reload HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    let req = p.try_next().unwrap().unwrap();
    assert!(req.body.is_empty());
    // Declared over the cap: rejected before any body byte arrives.
    p.feed(b"POST /v1/check HTTP/1.1\r\ncontent-length: 17\r\n\r\n");
    assert_eq!(p.try_next(), Err(ParseError::BodyTooLarge));
}

#[test]
fn malformed_bodies_and_framing() {
    // Non-numeric and negative content-lengths are framing errors.
    for bad in ["abc", "-1", "1e3", ""] {
        let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        p.feed(format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n").as_bytes());
        assert!(
            matches!(p.try_next(), Err(ParseError::BadRequest(_))),
            "content-length '{bad}' must be rejected"
        );
    }
    // A body shorter than declared stays incomplete (the connection
    // loop's EOF then surfaces it as an abrupt disconnect).
    let mut p = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    p.feed(b"POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\nab");
    assert_eq!(p.try_next(), Ok(None));
    assert!(!p.is_empty());
}

// ---------------------------------------------------------------------------
// Socket level, against a live server.

#[test]
fn live_server_survives_abuse() {
    // Same abuse, both connection cores: the epoll reactor and the
    // threaded pool must shed it identically.
    for io in common::io_modes() {
        live_server_survives_abuse_on(io);
    }
}

fn live_server_survives_abuse_on(io: cc_server::IoMode) {
    let dir = common::temp_dir(&format!("abuse_{io:?}"));
    common::write_profile(&dir, "p", &common::regime_profile(300, 0.0));
    let handle = common::start_server_io(&dir, 2, io);
    let addr = handle.addr();

    // 1. Abrupt disconnect mid-request: half a request line, then drop.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /v1/check HTTP/1.1\r\ncontent-length: 100\r\n\r\ntrunc").unwrap();
        drop(s);
    }
    // 2. Immediate disconnect with nothing sent.
    drop(TcpStream::connect(addr).unwrap());

    // 3. Garbage bytes: the server answers an error and closes.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\x16\x03\x01 this is not http\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    // 4. Oversized header block on the wire → 431.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let huge = format!("GET /healthz HTTP/1.1\r\nx: {}\r\n\r\n", "y".repeat(20_000));
        s.write_all(huge.as_bytes()).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 431"));
    }

    // 5. Two pipelined requests in one write → two in-order responses
    //    on the same connection.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/profiles HTTP/1.1\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
        let first = text.find("\"status\":\"ok\"").unwrap();
        let second = text.find("\"profiles\":[{\"name\":\"p\"").unwrap();
        assert!(first < second, "pipelined responses out of order");
    }

    // After all the abuse, a normal request still works.
    let mut client = HttpClient::connect(addr).unwrap();
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    // Method/route errors come back as structured JSON.
    assert_eq!(client.get("/v1/check").unwrap().status, 405);
    assert_eq!(client.request("POST", "/healthz", b"").unwrap().status, 405);
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.request("POST", "/v1/check", b"{broken").unwrap().status, 400);
    assert_eq!(client.request("POST", "/v1/check", b"{}").unwrap().status, 400);
    let missing = client.request("POST", "/v1/check?profile=ghost", b"{\"columns\":{}}").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.text().contains("ghost"));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
