//! Property tests for the binary columnar wire codec, plus a live-server
//! check that malformed columnar bodies come back as clean `400`s.
//!
//! The codec promises exact identity — `decode(encode(df))` reproduces
//! column order, numeric bit patterns (NaNs and signed zeros included),
//! and categorical codes + dictionaries — and total robustness: no input
//! buffer, however mangled, may panic the decoder.

mod common;

use cc_frame::{Column, DataFrame};
use cc_server::wire::{decode_frame, decode_violations, encode_frame, encode_violations};
use proptest::prelude::*;

/// Dictionary pool for generated categorical columns: includes the empty
/// label and multi-byte UTF-8 so string framing is exercised.
const LABELS: [&str; 5] = ["", "a", "regime-b", "µ-unit", "long-label-with-some-bytes"];

/// An arbitrary frame: up to 6 columns of mixed kind over a shared row
/// count (including the 0-row and 0-column degenerate shapes). Numeric
/// values are raw u64 bit patterns reinterpreted as f64, so NaN payloads,
/// infinities, subnormals, and signed zeros all occur.
fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    (0usize..40)
        .prop_flat_map(|n_rows| {
            (
                Just(n_rows),
                proptest::collection::vec(
                    (0u8..2, proptest::collection::vec(0u64..u64::MAX, n_rows..=n_rows)),
                    0usize..6,
                ),
            )
        })
        .prop_map(|(_, cols)| {
            let mut df = DataFrame::new();
            for (i, (kind, words)) in cols.into_iter().enumerate() {
                let name = format!("c{i}");
                if kind == 0 {
                    let vals: Vec<f64> = words.iter().map(|&w| f64::from_bits(w)).collect();
                    df.push_numeric(&name, vals).unwrap();
                } else {
                    // A dict larger than the used code range leaves unused
                    // entries — the layout must carry them through.
                    let dict: Vec<String> = LABELS.iter().map(|s| (*s).to_owned()).collect();
                    let codes: Vec<u32> =
                        words.iter().map(|&w| (w % LABELS.len() as u64) as u32).collect();
                    let col = Column::categorical_from_parts(codes, dict).unwrap();
                    df.push_column(name, col).unwrap();
                }
            }
            df
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact_identity(df in frame_strategy()) {
        let back = decode_frame(&encode_frame(&df)).unwrap();
        prop_assert_eq!(back.names(), df.names());
        prop_assert_eq!(back.n_rows(), df.n_rows());
        for name in df.names() {
            match df.column(name).unwrap() {
                Column::Numeric(vals) => {
                    let got = back.numeric(name).unwrap();
                    prop_assert_eq!(got.len(), vals.len());
                    for (g, w) in got.iter().zip(vals) {
                        prop_assert_eq!(g.to_bits(), w.to_bits());
                    }
                }
                Column::Categorical { codes, dict } => {
                    let (got_codes, got_dict) = back.categorical(name).unwrap();
                    prop_assert_eq!(got_codes, &codes[..]);
                    prop_assert_eq!(got_dict, &dict[..]);
                }
            }
        }
    }

    #[test]
    fn violations_reply_roundtrips_bit_exact(
        words in proptest::collection::vec(0u64..u64::MAX, 0usize..64),
    ) {
        let vals: Vec<f64> = words.iter().map(|&w| f64::from_bits(w)).collect();
        let got = decode_violations(&encode_violations(&vals)).unwrap();
        prop_assert_eq!(got.len(), vals.len());
        for (g, w) in got.iter().zip(&vals) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn truncated_frames_error_cleanly(df in frame_strategy(), frac in 0.0..1.0f64) {
        let bytes = encode_frame(&df);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        // Every proper prefix must be rejected — never accepted short,
        // never a panic.
        prop_assert!(decode_frame(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_corruption_never_panics(
        df in frame_strategy(),
        pos_frac in 0.0..1.0f64,
        delta in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&df);
        prop_assume!(!bytes.is_empty());
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        // Corruption in a float plane can still be a valid frame; the
        // contract is only that decoding returns instead of panicking.
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0usize..160)) {
        let _ = decode_frame(&bytes);
        let _ = decode_violations(&bytes);
    }
}

/// Malformed columnar bodies on the live wire: the server answers a
/// structured `400`, stays up, and keeps serving the same connection.
#[test]
fn live_server_rejects_malformed_columnar_with_400() {
    let dir = common::temp_dir("wire400");
    common::write_profile(&dir, "p", &common::regime_profile(300, 0.0));
    let handle = common::start_server(&dir, 1);
    let mut client = cc_server::HttpClient::connect(handle.addr()).unwrap();

    let columnar = [("content-type", cc_server::wire::CONTENT_TYPE_COLUMNAR)];
    let good = encode_frame(&common::regime_frame(8, 0.0));
    let mut cases: Vec<Vec<u8>> = vec![
        Vec::new(),                      // empty body
        b"not a frame at all".to_vec(),  // bad magic
        good[..good.len() - 3].to_vec(), // truncated plane
    ];
    let mut bad_version = good.clone();
    bad_version[4] = 42;
    cases.push(bad_version);
    let mut huge = good.clone();
    huge[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    cases.push(huge);

    for (i, body) in cases.iter().enumerate() {
        let resp = client.request_with("POST", "/v1/check?profile=p", body, &columnar).unwrap();
        assert_eq!(resp.status, 400, "case {i}: {}", resp.text());
        assert!(resp.text().contains("columnar"), "case {i}: {}", resp.text());
    }

    // The connection and server both survived: a well-formed columnar
    // request on the same keep-alive connection succeeds.
    let resp = client.post_columnar("/v1/check?profile=p", &common::regime_frame(8, 0.0)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
