//! CSV read/write for [`DataFrame`].
//!
//! A deliberately small dialect: comma-separated, first row is the header,
//! optional double-quote quoting (no embedded newlines), type inference per
//! column (numeric iff every non-empty cell parses as `f64`). Good enough to
//! round-trip every dataset in this workspace.

use crate::column::Column;
use crate::frame::{DataFrame, FrameError};
use std::io::{self, BufRead, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data row has a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// The input had no header row.
    Empty,
    /// Frame-level error while assembling columns.
    Frame(FrameError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::RaggedRow { line, got, expected } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::Empty => write!(f, "empty csv input"),
            CsvError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<FrameError> for CsvError {
    fn from(e: FrameError) -> Self {
        CsvError::Frame(e)
    }
}

/// Splits one CSV line into fields, honoring double-quote quoting and the
/// `""` escape inside quoted fields. Public so line-at-a-time consumers
/// (the CLI's streaming `monitor` tail) parse records exactly the way
/// [`read_csv`] does.
pub fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Quotes a field if it contains a comma, quote, or leading/trailing space.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.starts_with(' ') || s.ends_with(' ') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Reads a dataframe from CSV text, inferring column types: a column is
/// numeric iff every cell parses as `f64` (empty cells are treated as
/// non-numeric to avoid silent NaNs).
///
/// # Errors
/// Fails on I/O errors, ragged rows, or an empty input.
pub fn read_csv<R: BufRead>(reader: R) -> Result<DataFrame, CsvError> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => split_line(&h?),
        None => return Err(CsvError::Empty),
    };
    let width = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); width];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line);
        if fields.len() != width {
            return Err(CsvError::RaggedRow {
                line: lineno + 2,
                got: fields.len(),
                expected: width,
            });
        }
        for (col, field) in cells.iter_mut().zip(fields) {
            col.push(field);
        }
    }
    let mut df = DataFrame::new();
    for (name, col) in header.into_iter().zip(cells) {
        let numeric: Option<Vec<f64>> = col
            .iter()
            .map(|s| {
                let t = s.trim();
                if t.is_empty() {
                    None
                } else {
                    t.parse::<f64>().ok()
                }
            })
            .collect();
        match numeric {
            Some(values) if !col.is_empty() => df.push_column(name, Column::Numeric(values))?,
            _ => df.push_column(name, Column::categorical_from_labels(&col))?,
        }
    }
    Ok(df)
}

/// Serializes a dataframe as CSV (header + rows). Numeric cells use the
/// shortest round-trip `f64` formatting.
///
/// # Errors
/// Fails on I/O errors.
pub fn write_csv<W: Write>(df: &DataFrame, mut w: W) -> io::Result<()> {
    let header: Vec<String> = df.names().iter().map(|n| quote_field(n)).collect();
    writeln!(w, "{}", header.join(","))?;
    let n = df.n_rows();
    for i in 0..n {
        let mut fields = Vec::with_capacity(df.n_cols());
        for name in df.names() {
            let col = df.column(name).expect("column exists");
            match col {
                Column::Numeric(v) => fields.push(format!("{}", v[i])),
                Column::Categorical { codes, dict } => {
                    fields.push(quote_field(&dict[codes[i] as usize]))
                }
            }
        }
        writeln!(w, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let mut df = DataFrame::new();
        df.push_numeric("x", vec![1.5, -2.0, 3.25]).unwrap();
        df.push_categorical("label", &["alpha", "beta, with comma", "gam\"ma"]).unwrap();
        let mut buf = Vec::new();
        write_csv(&df, &mut buf).unwrap();
        let back = read_csv(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.numeric("x").unwrap(), &[1.5, -2.0, 3.25]);
        let (codes, dict) = back.categorical("label").unwrap();
        assert_eq!(dict[codes[1] as usize], "beta, with comma");
        assert_eq!(dict[codes[2] as usize], "gam\"ma");
    }

    #[test]
    fn type_inference() {
        let text = "a,b,c\n1,x,2.5\n2,y,3.5\n";
        let df = read_csv(BufReader::new(text.as_bytes())).unwrap();
        assert!(df.numeric("a").is_ok());
        assert!(df.categorical("b").is_ok());
        assert!(df.numeric("c").is_ok());
    }

    #[test]
    fn mixed_column_becomes_categorical() {
        let text = "v\n1\nnot_a_number\n3\n";
        let df = read_csv(BufReader::new(text.as_bytes())).unwrap();
        assert!(df.categorical("v").is_ok());
    }

    #[test]
    fn ragged_row_detected() {
        let text = "a,b\n1,2\n3\n";
        match read_csv(BufReader::new(text.as_bytes())) {
            Err(CsvError::RaggedRow { line, got, expected }) => {
                assert_eq!(line, 3);
                assert_eq!(got, 1);
                assert_eq!(expected, 2);
            }
            other => panic!("expected ragged row error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(read_csv(BufReader::new("".as_bytes())), Err(CsvError::Empty)));
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "a\n1\n\n2\n";
        let df = read_csv(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn quoted_fields_parse() {
        let text = "name,score\n\"hello, world\",3\n\"say \"\"hi\"\"\",4\n";
        let df = read_csv(BufReader::new(text.as_bytes())).unwrap();
        let (codes, dict) = df.categorical("name").unwrap();
        assert_eq!(dict[codes[0] as usize], "hello, world");
        assert_eq!(dict[codes[1] as usize], "say \"hi\"");
    }
}
