//! Column storage: dense numeric vectors and dictionary-encoded categoricals.

/// Discriminates the two column kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// `f64` numeric column (participates in projections).
    Numeric,
    /// Dictionary-encoded categorical column (participates in partitioning).
    Categorical,
}

/// A single column of data.
#[derive(Clone, Debug)]
pub enum Column {
    /// Dense numeric values.
    Numeric(Vec<f64>),
    /// Dictionary-encoded categorical values: `codes[i]` indexes into
    /// `dict`. The dictionary preserves first-seen order.
    Categorical {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Distinct values, indexed by code.
        dict: Vec<String>,
    },
}

impl Column {
    /// Builds a categorical column from string labels, dictionary-encoding
    /// them in first-seen order.
    pub fn categorical_from_labels<S: AsRef<str>>(labels: &[S]) -> Column {
        let mut dict: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(labels.len());
        for l in labels {
            let l = l.as_ref();
            let code = match dict.iter().position(|d| d == l) {
                Some(i) => i as u32,
                None => {
                    dict.push(l.to_owned());
                    (dict.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        Column::Categorical { codes, dict }
    }

    /// Builds a categorical column directly from pre-encoded parts —
    /// the ingest path for wire formats that ship dictionary codes as-is
    /// (no per-row label re-encoding). `None` when any code is out of
    /// range for the dictionary.
    pub fn categorical_from_parts(codes: Vec<u32>, dict: Vec<String>) -> Option<Column> {
        let n = dict.len() as u32;
        if codes.iter().any(|&c| c >= n) {
            return None;
        }
        Some(Column::Categorical { codes, dict })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's kind.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Numeric(_) => ColumnType::Numeric,
            Column::Categorical { .. } => ColumnType::Categorical,
        }
    }

    /// Numeric view, if numeric.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            _ => None,
        }
    }

    /// Categorical view `(codes, dict)`, if categorical.
    pub fn as_categorical(&self) -> Option<(&[u32], &[String])> {
        match self {
            Column::Categorical { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Number of distinct values (dictionary size for categoricals; distinct
    /// count for numerics is not tracked and returns `None`).
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Column::Categorical { dict, .. } => Some(dict.len()),
            Column::Numeric(_) => None,
        }
    }

    /// Row-subset copy (used by `DataFrame::take`).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, dict } => {
                // Re-encode so the new dictionary only holds values present
                // in the subset (keeps partition cardinality meaningful).
                let labels: Vec<&str> =
                    indices.iter().map(|&i| dict[codes[i] as usize].as_str()).collect();
                Column::categorical_from_labels(&labels)
            }
        }
    }

    /// Appends the rows of another column of the same kind.
    ///
    /// # Panics
    /// Panics when column kinds differ.
    pub fn append(&mut self, other: &Column) {
        match (self, other) {
            (Column::Numeric(a), Column::Numeric(b)) => a.extend_from_slice(b),
            (Column::Categorical { codes, dict }, Column::Categorical { codes: oc, dict: od }) => {
                // Remap other's codes into our dictionary.
                let mut remap = Vec::with_capacity(od.len());
                for val in od {
                    let code = match dict.iter().position(|d| d == val) {
                        Some(i) => i as u32,
                        None => {
                            dict.push(val.clone());
                            (dict.len() - 1) as u32
                        }
                    };
                    remap.push(code);
                }
                codes.extend(oc.iter().map(|&c| remap[c as usize]));
            }
            _ => panic!("Column::append: mismatched column kinds"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_encoding_first_seen_order() {
        let c = Column::categorical_from_labels(&["b", "a", "b", "c", "a"]);
        let (codes, dict) = c.as_categorical().unwrap();
        assert_eq!(dict, &["b".to_string(), "a".to_string(), "c".to_string()]);
        assert_eq!(codes, &[0, 1, 0, 2, 1]);
        assert_eq!(c.cardinality(), Some(3));
    }

    #[test]
    fn take_reencodes_dictionary() {
        let c = Column::categorical_from_labels(&["x", "y", "z", "y"]);
        let sub = c.take(&[1, 3]);
        let (codes, dict) = sub.as_categorical().unwrap();
        assert_eq!(dict, &["y".to_string()]);
        assert_eq!(codes, &[0, 0]);
    }

    #[test]
    fn categorical_from_parts_validates_codes() {
        let ok = Column::categorical_from_parts(vec![0, 1, 0], vec!["a".into(), "b".into()])
            .expect("codes in range");
        assert_eq!(ok.as_categorical().unwrap().0, &[0, 1, 0]);
        assert!(Column::categorical_from_parts(vec![2], vec!["a".into(), "b".into()]).is_none());
        assert!(Column::categorical_from_parts(vec![0], Vec::new()).is_none());
        // Zero rows with any dictionary is fine (an empty batch still
        // carries the column's type).
        assert!(Column::categorical_from_parts(Vec::new(), vec!["a".into()]).is_some());
    }

    #[test]
    fn numeric_take() {
        let c = Column::Numeric(vec![10.0, 20.0, 30.0]);
        let sub = c.take(&[2, 0]);
        assert_eq!(sub.as_numeric().unwrap(), &[30.0, 10.0]);
    }

    #[test]
    fn append_numeric() {
        let mut a = Column::Numeric(vec![1.0]);
        a.append(&Column::Numeric(vec![2.0, 3.0]));
        assert_eq!(a.as_numeric().unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn append_categorical_remaps() {
        let mut a = Column::categorical_from_labels(&["x", "y"]);
        let b = Column::categorical_from_labels(&["y", "z"]);
        a.append(&b);
        let (codes, dict) = a.as_categorical().unwrap();
        assert_eq!(dict, &["x".to_string(), "y".to_string(), "z".to_string()]);
        assert_eq!(codes, &[0, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "mismatched column kinds")]
    fn append_mismatch_panics() {
        let mut a = Column::Numeric(vec![1.0]);
        a.append(&Column::categorical_from_labels(&["x"]));
    }

    #[test]
    fn column_type_and_len() {
        let n = Column::Numeric(vec![1.0, 2.0]);
        assert_eq!(n.column_type(), ColumnType::Numeric);
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
        assert!(Column::Numeric(vec![]).is_empty());
    }
}
