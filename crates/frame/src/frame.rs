//! The [`DataFrame`] type.

use crate::column::{Column, ColumnType};
use std::collections::BTreeMap;

/// Errors from dataframe operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Column length disagrees with the frame's row count.
    LengthMismatch {
        /// The offending column.
        column: String,
        /// Its length.
        got: usize,
        /// The frame's row count.
        expected: usize,
    },
    /// No column with this name.
    NoSuchColumn(String),
    /// Column exists but has the wrong kind for the operation.
    WrongType {
        /// The offending column.
        column: String,
        /// The kind the operation required.
        expected: ColumnType,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::DuplicateColumn(c) => write!(f, "duplicate column '{c}'"),
            FrameError::LengthMismatch { column, got, expected } => {
                write!(f, "column '{column}' has {got} rows, frame has {expected}")
            }
            FrameError::NoSuchColumn(c) => write!(f, "no column named '{c}'"),
            FrameError::WrongType { column, expected } => {
                write!(f, "column '{column}' is not {expected:?}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A column-oriented table with named numeric and categorical columns.
#[derive(Clone, Debug, Default)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl DataFrame {
    /// An empty frame (no columns, no rows).
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Adds a numeric column.
    ///
    /// # Errors
    /// Fails on duplicate name or row-count mismatch with existing columns.
    pub fn push_numeric(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> Result<(), FrameError> {
        self.push_column(name.into(), Column::Numeric(values))
    }

    /// Adds a categorical column from string labels.
    ///
    /// # Errors
    /// Fails on duplicate name or row-count mismatch with existing columns.
    pub fn push_categorical<S: AsRef<str>>(
        &mut self,
        name: impl Into<String>,
        labels: &[S],
    ) -> Result<(), FrameError> {
        self.push_column(name.into(), Column::categorical_from_labels(labels))
    }

    /// Adds a prebuilt column.
    ///
    /// # Errors
    /// Fails on duplicate name or row-count mismatch with existing columns.
    pub fn push_column(&mut self, name: String, col: Column) -> Result<(), FrameError> {
        if self.names.contains(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                column: name,
                got: col.len(),
                expected: self.n_rows(),
            });
        }
        self.names.push(name);
        self.columns.push(col);
        Ok(())
    }

    /// Number of rows (0 when no columns).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Borrow of a named column.
    ///
    /// # Errors
    /// Fails when the column does not exist.
    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        self.column_index(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_owned()))
    }

    /// Borrow of a named numeric column's values.
    ///
    /// # Errors
    /// Fails when missing or non-numeric.
    pub fn numeric(&self, name: &str) -> Result<&[f64], FrameError> {
        self.column(name)?.as_numeric().ok_or_else(|| FrameError::WrongType {
            column: name.to_owned(),
            expected: ColumnType::Numeric,
        })
    }

    /// Borrow of a named categorical column as `(codes, dict)`.
    ///
    /// # Errors
    /// Fails when missing or non-categorical.
    pub fn categorical(&self, name: &str) -> Result<(&[u32], &[String]), FrameError> {
        self.column(name)?.as_categorical().ok_or_else(|| FrameError::WrongType {
            column: name.to_owned(),
            expected: ColumnType::Categorical,
        })
    }

    /// Names of all numeric columns, in order.
    pub fn numeric_names(&self) -> Vec<&str> {
        self.names
            .iter()
            .zip(&self.columns)
            .filter(|(_, c)| c.column_type() == ColumnType::Numeric)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Names of all categorical columns, in order.
    pub fn categorical_names(&self) -> Vec<&str> {
        self.names
            .iter()
            .zip(&self.columns)
            .filter(|(_, c)| c.column_type() == ColumnType::Categorical)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Materializes rows over the named numeric columns: row i is
    /// `[col0[i], col1[i], …]`. This is the tuple view the synthesis
    /// algorithm consumes ("drop all non-numerical attributes", Alg. 1 L1).
    ///
    /// # Errors
    /// Fails when any named column is missing or non-numeric.
    pub fn numeric_rows(&self, names: &[&str]) -> Result<Vec<Vec<f64>>, FrameError> {
        let cols: Vec<&[f64]> = names.iter().map(|n| self.numeric(n)).collect::<Result<_, _>>()?;
        let n = self.n_rows();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(cols.iter().map(|c| c[i]).collect());
        }
        Ok(rows)
    }

    /// Single row over the named numeric columns.
    ///
    /// # Errors
    /// Fails when any named column is missing or non-numeric.
    pub fn numeric_row(&self, names: &[&str], i: usize) -> Result<Vec<f64>, FrameError> {
        names.iter().map(|n| self.numeric(n).map(|c| c[i])).collect()
    }

    /// Zero-copy row view over the named numeric columns — the iteration
    /// surface the synthesis engine consumes. Unlike [`Self::numeric_rows`]
    /// it materializes nothing: rows are read straight out of the column
    /// storage, and [`NumericView::chunks`] exposes the aligned row-range
    /// chunking that sharded synthesis parallelizes over.
    ///
    /// # Errors
    /// Fails when any named column is missing or non-numeric.
    pub fn numeric_view<'a>(&'a self, names: &[&str]) -> Result<NumericView<'a>, FrameError> {
        let cols: Vec<&'a [f64]> =
            names.iter().map(|n| self.numeric(n)).collect::<Result<_, _>>()?;
        Ok(NumericView { n_rows: self.n_rows(), cols })
    }

    /// Row-subset copy.
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        DataFrame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// Rows where `pred(i)` holds.
    pub fn filter_by_index(&self, pred: impl Fn(usize) -> bool) -> DataFrame {
        let idx: Vec<usize> = (0..self.n_rows()).filter(|&i| pred(i)).collect();
        self.take(&idx)
    }

    /// Copy without the named column (e.g. dropping the prediction target
    /// before learning constraints, as in the Fig-4 experiment).
    ///
    /// # Errors
    /// Fails when the column does not exist.
    pub fn drop_column(&self, name: &str) -> Result<DataFrame, FrameError> {
        let i = self.column_index(name).ok_or_else(|| FrameError::NoSuchColumn(name.to_owned()))?;
        let mut names = self.names.clone();
        let mut columns = self.columns.clone();
        names.remove(i);
        columns.remove(i);
        Ok(DataFrame { names, columns })
    }

    /// Partitions row indices by the values of a categorical column,
    /// returning `label → indices` in dictionary order. This is §4.2's
    /// horizontal partitioning.
    ///
    /// # Errors
    /// Fails when the column is missing or non-categorical.
    pub fn partition_by(&self, name: &str) -> Result<Vec<(String, Vec<usize>)>, FrameError> {
        let (codes, dict) = self.categorical(name)?;
        let mut buckets: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, &c) in codes.iter().enumerate() {
            buckets.entry(c).or_default().push(i);
        }
        Ok(buckets.into_iter().map(|(code, idx)| (dict[code as usize].clone(), idx)).collect())
    }

    /// Vertically concatenates another frame with the same schema (names,
    /// kinds, order).
    ///
    /// # Errors
    /// Fails on schema mismatch.
    pub fn vstack(&self, other: &DataFrame) -> Result<DataFrame, FrameError> {
        if self.names != other.names {
            return Err(FrameError::NoSuchColumn(format!(
                "schema mismatch: {:?} vs {:?}",
                self.names, other.names
            )));
        }
        let mut out = self.clone();
        for (mine, theirs) in out.columns.iter_mut().zip(&other.columns) {
            if mine.column_type() != theirs.column_type() {
                return Err(FrameError::WrongType {
                    column: "vstack".into(),
                    expected: mine.column_type(),
                });
            }
            mine.append(theirs);
        }
        Ok(out)
    }
}

/// Borrowed row-oriented view over a set of numeric columns.
///
/// Created by [`DataFrame::numeric_view`]. Row `i` is
/// `[col0[i], col1[i], …]`; [`Self::fill_row`] writes it into a caller
/// buffer so tight loops allocate nothing.
#[derive(Clone, Debug)]
pub struct NumericView<'a> {
    n_rows: usize,
    cols: Vec<&'a [f64]>,
}

impl NumericView<'_> {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (the tuple arity).
    pub fn dim(&self) -> usize {
        self.cols.len()
    }

    /// Writes row `i` into `buf`.
    ///
    /// # Panics
    /// Panics when `buf.len() != dim()` or `i` is out of range.
    #[inline]
    pub fn fill_row(&self, i: usize, buf: &mut [f64]) {
        assert_eq!(buf.len(), self.cols.len(), "fill_row: buffer arity mismatch");
        for (slot, col) in buf.iter_mut().zip(&self.cols) {
            *slot = col[i];
        }
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Gathers the row range `rows` of every column into `out` as a
    /// structure-of-arrays block: column `j` occupies
    /// `out[j*b..(j+1)*b]` where `b = rows.len()`. Returns `b`.
    ///
    /// This is the serving engine's chunked column gather: each block is
    /// copied once into a small, cache-resident scratch buffer that a
    /// blocked kernel then re-reads once per constraint. `out` is cleared
    /// and reused; steady-state evaluation allocates nothing.
    ///
    /// # Panics
    /// Panics when `rows` exceeds the view's row range.
    pub fn gather_chunk(&self, rows: std::ops::Range<usize>, out: &mut Vec<f64>) -> usize {
        assert!(rows.end <= self.n_rows, "gather_chunk: row range out of bounds");
        let b = rows.len();
        out.clear();
        out.reserve(self.cols.len() * b);
        for col in &self.cols {
            out.extend_from_slice(&col[rows.clone()]);
        }
        b
    }

    /// Row-index ranges of at most `chunk_rows` rows, in order. The last
    /// chunk may be short. `chunk_rows` must be positive.
    pub fn chunks(&self, chunk_rows: usize) -> Vec<std::ops::Range<usize>> {
        assert!(chunk_rows > 0, "chunks: chunk_rows must be positive");
        (0..self.n_rows)
            .step_by(chunk_rows)
            .map(|start| start..(start + chunk_rows).min(self.n_rows))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new();
        df.push_numeric("x", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        df.push_numeric("y", vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        df.push_categorical("g", &["a", "b", "a", "b"]).unwrap();
        df
    }

    #[test]
    fn shape_and_names() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.numeric_names(), vec!["x", "y"]);
        assert_eq!(df.categorical_names(), vec!["g"]);
    }

    #[test]
    fn duplicate_and_mismatch_rejected() {
        let mut df = sample();
        assert!(matches!(df.push_numeric("x", vec![0.0; 4]), Err(FrameError::DuplicateColumn(_))));
        assert!(matches!(
            df.push_numeric("z", vec![0.0; 3]),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn numeric_rows_view() {
        let df = sample();
        let rows = df.numeric_rows(&["x", "y"]).unwrap();
        assert_eq!(rows[2], vec![3.0, 30.0]);
        let r = df.numeric_row(&["y"], 1).unwrap();
        assert_eq!(r, vec![20.0]);
    }

    #[test]
    fn zero_copy_view_matches_materialized() {
        let df = sample();
        let view = df.numeric_view(&["y", "x"]).unwrap();
        assert_eq!(view.n_rows(), 4);
        assert_eq!(view.dim(), 2);
        let mut buf = [0.0; 2];
        for i in 0..view.n_rows() {
            view.fill_row(i, &mut buf);
            assert_eq!(buf.to_vec(), view.row(i));
            assert_eq!(buf[0], df.numeric("y").unwrap()[i]);
            assert_eq!(buf[1], df.numeric("x").unwrap()[i]);
        }
        assert!(df.numeric_view(&["x", "g"]).is_err());
        assert!(df.numeric_view(&["nope"]).is_err());
    }

    #[test]
    fn gather_chunk_is_soa() {
        let df = sample();
        let view = df.numeric_view(&["x", "y"]).unwrap();
        let mut buf = vec![999.0; 3]; // stale contents must be cleared
        let b = view.gather_chunk(1..4, &mut buf);
        assert_eq!(b, 3);
        // Column-major within the block: x's rows 1..4, then y's.
        assert_eq!(buf, vec![2.0, 3.0, 4.0, 20.0, 30.0, 40.0]);
        // Empty range gathers nothing.
        assert_eq!(view.gather_chunk(2..2, &mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_chunk_rejects_bad_range() {
        let df = sample();
        let view = df.numeric_view(&["x"]).unwrap();
        view.gather_chunk(2..9, &mut Vec::new());
    }

    #[test]
    fn view_chunks_cover_rows() {
        let df = sample();
        let view = df.numeric_view(&["x"]).unwrap();
        let chunks = view.chunks(3);
        assert_eq!(chunks, vec![0..3, 3..4]);
        let all = view.chunks(100);
        assert_eq!(all, vec![0..4]);
    }

    #[test]
    fn wrong_type_errors() {
        let df = sample();
        assert!(matches!(df.numeric("g"), Err(FrameError::WrongType { .. })));
        assert!(matches!(df.categorical("x"), Err(FrameError::WrongType { .. })));
        assert!(matches!(df.numeric("nope"), Err(FrameError::NoSuchColumn(_))));
    }

    #[test]
    fn take_and_filter() {
        let df = sample();
        let sub = df.take(&[0, 2]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.numeric("x").unwrap(), &[1.0, 3.0]);
        let f = df.filter_by_index(|i| i % 2 == 1);
        assert_eq!(f.numeric("x").unwrap(), &[2.0, 4.0]);
    }

    #[test]
    fn drop_column_works() {
        let df = sample().drop_column("y").unwrap();
        assert_eq!(df.n_cols(), 2);
        assert!(df.column("y").is_err());
        assert!(sample().drop_column("nope").is_err());
    }

    #[test]
    fn partition_by_groups() {
        let df = sample();
        let parts = df.partition_by("g").unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], ("a".to_string(), vec![0, 2]));
        assert_eq!(parts[1], ("b".to_string(), vec![1, 3]));
    }

    #[test]
    fn vstack_same_schema() {
        let df = sample();
        let both = df.vstack(&df).unwrap();
        assert_eq!(both.n_rows(), 8);
        assert_eq!(both.numeric("x").unwrap()[4], 1.0);
        let (codes, dict) = both.categorical("g").unwrap();
        assert_eq!(dict.len(), 2);
        assert_eq!(codes.len(), 8);
    }

    #[test]
    fn vstack_schema_mismatch() {
        let df = sample();
        let other = df.drop_column("y").unwrap();
        assert!(df.vstack(&other).is_err());
    }

    #[test]
    fn empty_frame() {
        let df = DataFrame::new();
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.n_cols(), 0);
    }
}
