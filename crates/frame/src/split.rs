//! Reproducible dataset splits and sampling.

use crate::frame::DataFrame;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffles row indices with the provided RNG and splits the frame into
/// `(train, test)` with `train_fraction` of the rows in the first part.
///
/// # Panics
/// Panics if `train_fraction` is outside `[0, 1]`.
pub fn shuffle_split<R: Rng>(
    df: &DataFrame,
    train_fraction: f64,
    rng: &mut R,
) -> (DataFrame, DataFrame) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must be in [0,1], got {train_fraction}"
    );
    let n = df.n_rows();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let cut = (n as f64 * train_fraction).round() as usize;
    let (a, b) = idx.split_at(cut.min(n));
    (df.take(a), df.take(b))
}

/// Samples `k` row indices without replacement (or all rows when `k ≥ n`).
pub fn sample_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k.min(n));
    idx
}

/// Returns, per value of the categorical column, up to `per_group` shuffled
/// row indices — a stratified subsample. Groups appear in dictionary order.
///
/// # Errors
/// Fails when the column is missing or non-categorical.
pub fn stratified_indices<R: Rng>(
    df: &DataFrame,
    column: &str,
    per_group: usize,
    rng: &mut R,
) -> Result<Vec<(String, Vec<usize>)>, crate::frame::FrameError> {
    let parts = df.partition_by(column)?;
    Ok(parts
        .into_iter()
        .map(|(label, mut idx)| {
            idx.shuffle(rng);
            idx.truncate(per_group);
            (label, idx)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(n: usize) -> DataFrame {
        let mut df = DataFrame::new();
        df.push_numeric("x", (0..n).map(|i| i as f64).collect()).unwrap();
        df.push_categorical(
            "g",
            &(0..n).map(|i| if i % 3 == 0 { "a" } else { "b" }).collect::<Vec<_>>(),
        )
        .unwrap();
        df
    }

    #[test]
    fn split_sizes() {
        let df = frame(100);
        let mut rng = StdRng::seed_from_u64(7);
        let (tr, te) = shuffle_split(&df, 0.8, &mut rng);
        assert_eq!(tr.n_rows(), 80);
        assert_eq!(te.n_rows(), 20);
    }

    #[test]
    fn split_is_partition() {
        let df = frame(50);
        let mut rng = StdRng::seed_from_u64(42);
        let (tr, te) = shuffle_split(&df, 0.5, &mut rng);
        let mut all: Vec<f64> =
            tr.numeric("x").unwrap().iter().chain(te.numeric("x").unwrap()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn split_deterministic_with_seed() {
        let df = frame(30);
        let (a1, _) = shuffle_split(&df, 0.5, &mut StdRng::seed_from_u64(1));
        let (a2, _) = shuffle_split(&df, 0.5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a1.numeric("x").unwrap(), a2.numeric("x").unwrap());
    }

    #[test]
    fn sample_indices_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_indices(10, 4, &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
        let all = sample_indices(5, 100, &mut rng);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn stratified_caps_groups() {
        let df = frame(30);
        let mut rng = StdRng::seed_from_u64(9);
        let groups = stratified_indices(&df, "g", 5, &mut rng).unwrap();
        assert_eq!(groups.len(), 2);
        for (_, idx) in &groups {
            assert!(idx.len() <= 5);
        }
    }
}
