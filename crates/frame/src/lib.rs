//! # cc-frame
//!
//! A minimal column-oriented dataframe, purpose-built for conformance-
//! constraint discovery. The paper's algorithms need exactly this much of a
//! dataframe:
//!
//! * **numeric columns** (`f64`) — projections are linear combinations of
//!   these (§3.1);
//! * **dictionary-encoded categorical columns** — compound (disjunctive)
//!   constraints partition the data on these (§4.2);
//! * **horizontal partitioning** by categorical value;
//! * **row selection / filtering / splits** to build train/serve datasets;
//! * **CSV I/O** so profiles can be learned over files.
//!
//! Columns are immutable once added; all transformation APIs return new
//! frames. Row order is meaningful only for reproducibility of sampling.

pub mod column;
pub mod csv;
pub mod frame;
pub mod split;

pub use column::{Column, ColumnType};
pub use csv::{read_csv, write_csv, CsvError};
pub use frame::{DataFrame, FrameError, NumericView};
pub use split::{sample_indices, shuffle_split, stratified_indices};
