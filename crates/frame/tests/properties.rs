//! Property-based tests for the dataframe substrate.

use cc_frame::{csv, Column, DataFrame};
use proptest::prelude::*;
use std::io::BufReader;

/// Strategy: a frame with one numeric and one categorical column.
fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    proptest::collection::vec((-1e6..1e6f64, 0usize..5), 1..50).prop_map(|rows| {
        let mut df = DataFrame::new();
        df.push_numeric("v", rows.iter().map(|(x, _)| *x).collect()).unwrap();
        let labels: Vec<String> = rows.iter().map(|(_, g)| format!("g{g}")).collect();
        df.push_categorical("g", &labels).unwrap();
        df
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV write → read round-trips numeric values and categorical labels.
    #[test]
    fn csv_roundtrip(df in frame_strategy()) {
        let mut buf = Vec::new();
        csv::write_csv(&df, &mut buf).unwrap();
        let back = csv::read_csv(BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        let (a, b) = (df.numeric("v").unwrap(), back.numeric("v").unwrap());
        for (x, y) in a.iter().zip(b) {
            // f64 Display round-trips exactly in Rust.
            prop_assert_eq!(x, y);
        }
        let (codes1, dict1) = df.categorical("g").unwrap();
        let (codes2, dict2) = back.categorical("g").unwrap();
        for (c1, c2) in codes1.iter().zip(codes2) {
            prop_assert_eq!(&dict1[*c1 as usize], &dict2[*c2 as usize]);
        }
    }

    /// take(all indices) is the identity.
    #[test]
    fn take_identity(df in frame_strategy()) {
        let idx: Vec<usize> = (0..df.n_rows()).collect();
        let t = df.take(&idx);
        prop_assert_eq!(t.n_rows(), df.n_rows());
        prop_assert_eq!(t.numeric("v").unwrap(), df.numeric("v").unwrap());
    }

    /// Partitions are disjoint and cover all rows.
    #[test]
    fn partition_covers(df in frame_strategy()) {
        let parts = df.partition_by("g").unwrap();
        let mut seen = vec![false; df.n_rows()];
        for (_, idx) in &parts {
            for &i in idx {
                prop_assert!(!seen[i], "row {i} in two partitions");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "rows not covered");
    }

    /// vstack length and content are concatenation.
    #[test]
    fn vstack_concatenates(a in frame_strategy(), b in frame_strategy()) {
        let both = a.vstack(&b).unwrap();
        prop_assert_eq!(both.n_rows(), a.n_rows() + b.n_rows());
        let v = both.numeric("v").unwrap();
        prop_assert_eq!(&v[..a.n_rows()], a.numeric("v").unwrap());
        prop_assert_eq!(&v[a.n_rows()..], b.numeric("v").unwrap());
        // Categorical labels preserved across the remap.
        let (codes, dict) = both.categorical("g").unwrap();
        let (bcodes, bdict) = b.categorical("g").unwrap();
        for (i, c) in bcodes.iter().enumerate() {
            prop_assert_eq!(&dict[codes[a.n_rows() + i] as usize], &bdict[*c as usize]);
        }
    }

    /// Shuffle-split partitions the rows exactly.
    #[test]
    fn split_partitions(df in frame_strategy(), seed in 0u64..1000, frac in 0.0..1.0f64) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (tr, te) = cc_frame::shuffle_split(&df, frac, &mut rng);
        prop_assert_eq!(tr.n_rows() + te.n_rows(), df.n_rows());
        let mut all: Vec<f64> = tr.numeric("v").unwrap().to_vec();
        all.extend_from_slice(te.numeric("v").unwrap());
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect: Vec<f64> = df.numeric("v").unwrap().to_vec();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(all, expect);
    }

    /// Dictionary encoding never loses or invents labels.
    #[test]
    fn dictionary_is_faithful(labels in proptest::collection::vec("g[0-9]{1,2}", 1..40)) {
        let col = Column::categorical_from_labels(&labels);
        let (codes, dict) = col.as_categorical().unwrap();
        prop_assert_eq!(codes.len(), labels.len());
        for (c, l) in codes.iter().zip(&labels) {
            prop_assert_eq!(&dict[*c as usize], l);
        }
        // Dictionary has no duplicates.
        for i in 0..dict.len() {
            for j in (i+1)..dict.len() {
                prop_assert_ne!(&dict[i], &dict[j]);
            }
        }
    }
}
