//! # cc-baselines
//!
//! The drift-detection baselines the paper compares against in §6.2:
//!
//! * [`PcaSpll`] — Kuncheva & Faithfull (2014): keep the **low-variance**
//!   principal components (cumulative explained variance below a threshold),
//!   cluster the reference window with k-means, and score a window by the
//!   semi-parametric log-likelihood statistic (mean min-cluster Mahalanobis
//!   distance). Shares the paper's low-variance intuition but models a
//!   distribution and learns no disjunctive structure.
//! * [`ChangeDetection`] (CD-MKL / CD-Area) — Qahtan et al. (2015): keep the
//!   **high-variance** principal components, estimate per-component
//!   densities with histograms, and report the maximum divergence across
//!   components (max symmetric KL, or 1 − intersection area).
//! * [`WPca`] — "weighted PCA": the paper's global ablation of CCSynth —
//!   conformance constraints without disjunctive partitioning. Fails on
//!   purely local drift (Fig. 6c, 4CR), which is the point.
//!
//! All baselines share the same two-call API: `fit(reference)` then
//! `drift(window)`.

pub mod cd;
pub mod pca_spll;
pub mod wpca;

pub use cd::{CdDivergence, ChangeDetection};
pub use pca_spll::PcaSpll;
pub use wpca::WPca;

use cc_frame::{DataFrame, FrameError};

/// Extracts the numeric-attribute row view of a frame, in column order.
pub(crate) fn numeric_rows(df: &DataFrame) -> Result<(Vec<String>, Vec<Vec<f64>>), FrameError> {
    let names: Vec<String> = df.numeric_names().into_iter().map(str::to_owned).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows = df.numeric_rows(&refs)?;
    Ok((names, rows))
}

/// Extracts rows for a *fixed* attribute list (serving windows must be
/// projected onto the reference's attributes).
pub(crate) fn rows_for(df: &DataFrame, names: &[String]) -> Result<Vec<Vec<f64>>, FrameError> {
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    df.numeric_rows(&refs)
}
