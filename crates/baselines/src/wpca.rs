//! W-PCA: the paper's global ablation of CCSynth — weighted-PCA
//! conformance constraints learned over the whole dataset, **without**
//! disjunctive partitioning.
//!
//! On globally stationary but locally drifting data (HAR activity switches,
//! EVL 4CR rotation) this baseline stays flat while full CCSynth rises —
//! exactly the contrast Fig. 6(c) plots.

use crate::pca_spll::BaselineError;
use cc_frame::DataFrame;
use conformance::{synthesize, ConformanceProfile, SynthOptions};

/// A fitted global (partition-free) conformance profile.
#[derive(Clone, Debug)]
pub struct WPca {
    profile: ConformanceProfile,
}

impl WPca {
    /// Learns global conformance constraints (Algorithm 1 only, no
    /// compound constraints).
    ///
    /// # Errors
    /// Fails when the reference has no numeric attributes.
    pub fn fit(reference: &DataFrame) -> Result<Self, BaselineError> {
        let opts = SynthOptions {
            include_global: true,
            partition_attributes: Some(vec![]), // disable disjunction
            ..Default::default()
        };
        let profile = synthesize(reference, &opts)
            .map_err(|e| BaselineError::Degenerate(format!("synthesis failed: {e}")))?;
        Ok(WPca { profile })
    }

    /// Mean violation of the window under the global constraints.
    ///
    /// # Errors
    /// Fails when the window lacks the reference's numeric attributes.
    pub fn drift(&self, window: &DataFrame) -> Result<f64, BaselineError> {
        self.profile
            .mean_violation(window)
            .map_err(|e| BaselineError::Degenerate(format!("evaluation failed: {e}")))
    }

    /// The underlying profile (for inspection in experiments).
    pub fn profile(&self) -> &ConformanceProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_datagen::{evl_dataset, EVL_NAMES};
    use conformance::{dataset_drift, DriftAggregator};

    #[test]
    fn wpca_misses_local_rotation_ccsynth_catches_it() {
        // 4CR: classes rotate; the union distribution is (nearly) rotation
        // invariant at the half-turn, so global constraints barely move,
        // while per-class (disjunctive) constraints fire. This is the
        // paper's central W-PCA contrast.
        let ds = evl_dataset("4CR", 9, 150, 42).unwrap();
        let reference = &ds.windows[0];

        let wpca = WPca::fit(reference).unwrap();
        let full = conformance::synthesize(reference, &Default::default()).unwrap();

        // Quarter-rotation window: every class has swapped position with
        // its neighbor (maximum local drift, zero global drift).
        let quarter = &ds.windows[2]; // t = 0.25 ⇒ θ = π/2
        let w = wpca.drift(quarter).unwrap();
        let c = dataset_drift(&full, quarter, DriftAggregator::Mean).unwrap();
        assert!(
            c > 5.0 * w.max(0.01),
            "CCSynth ({c:.3}) must dominate W-PCA ({w:.3}) on local drift"
        );
        assert!(c > 0.3, "local drift should register strongly, got {c}");
    }

    #[test]
    fn wpca_still_sees_global_translation() {
        let ds = evl_dataset("2CDT", 6, 150, 7).unwrap();
        let wpca = WPca::fit(&ds.windows[0]).unwrap();
        let start = wpca.drift(&ds.windows[0]).unwrap();
        let end = wpca.drift(ds.windows.last().unwrap()).unwrap();
        assert!(end > start + 0.1, "global translation visible: {start} → {end}");
    }

    #[test]
    fn all_evl_streams_fit_without_error() {
        for name in EVL_NAMES {
            let ds = evl_dataset(name, 3, 60, 1).unwrap();
            let det = WPca::fit(&ds.windows[0]).unwrap_or_else(|e| panic!("{name}: {e}"));
            let d = det.drift(&ds.windows[2]).unwrap();
            assert!((0.0..=1.0).contains(&d), "{name}: drift {d}");
        }
    }
}
