//! PCA-SPLL (Kuncheva & Faithfull, IEEE TNNLS 2014).
//!
//! 1. PCA on the reference window; **retain the lowest-variance components**
//!    whose cumulative explained variance stays below a threshold (the
//!    paper's Fig. 8 uses 25%) — low-variance components are the most
//!    sensitive to distributional change.
//! 2. Cluster the reference (in the reduced space) with k-means (k = 3 in
//!    the original paper).
//! 3. Score a window by SPLL: the mean, over its tuples, of the squared
//!    Mahalanobis distance to the nearest cluster mean, under a shared
//!    (regularized) covariance estimated from the reference.

use cc_frame::{DataFrame, FrameError};
use cc_linalg::pca::{pca, PrincipalComponents};
use cc_models::KMeans;
use cc_stats::MultivariateGaussian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`PcaSpll`].
#[derive(Clone, Debug)]
pub struct SpllOptions {
    /// Keep low-variance PCs while their cumulative explained variance is
    /// below this fraction (paper setting: 0.25).
    pub variance_threshold: f64,
    /// k-means cluster count (original SPLL: 3).
    pub clusters: usize,
    /// RNG seed for k-means seeding.
    pub seed: u64,
}

impl Default for SpllOptions {
    fn default() -> Self {
        SpllOptions { variance_threshold: 0.25, clusters: 3, seed: 0x5911 }
    }
}

/// Errors from fitting the baseline.
#[derive(Debug)]
pub enum BaselineError {
    /// Frame-level failure.
    Frame(FrameError),
    /// The reference window was empty or degenerate.
    Degenerate(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Frame(e) => write!(f, "frame error: {e}"),
            BaselineError::Degenerate(s) => write!(f, "degenerate reference window: {s}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<FrameError> for BaselineError {
    fn from(e: FrameError) -> Self {
        BaselineError::Frame(e)
    }
}

/// A fitted PCA-SPLL detector.
#[derive(Clone, Debug)]
pub struct PcaSpll {
    attributes: Vec<String>,
    pcs: PrincipalComponents,
    /// Indices (into the ascending-variance component list) retained.
    retained: Vec<usize>,
    clusters: Vec<Vec<f64>>,
    gaussian: MultivariateGaussian,
}

impl PcaSpll {
    /// Fits the detector on the reference window.
    ///
    /// # Errors
    /// Fails on empty references or all-degenerate covariance.
    pub fn fit(reference: &DataFrame, opts: &SpllOptions) -> Result<Self, BaselineError> {
        let (attributes, rows) = crate::numeric_rows(reference)?;
        if rows.is_empty() || attributes.is_empty() {
            return Err(BaselineError::Degenerate("empty reference".into()));
        }
        let pcs = pca(&rows, attributes.len())
            .map_err(|e| BaselineError::Degenerate(format!("pca failed: {e}")))?;
        // Retain low-variance components below the cumulative threshold
        // (components are ascending by variance). Always keep at least one.
        let ratios = pcs.explained_variance_ratio();
        let mut retained = Vec::new();
        let mut cum = 0.0;
        for (k, r) in ratios.iter().enumerate() {
            cum += r;
            if cum < opts.variance_threshold || retained.is_empty() {
                retained.push(k);
            } else {
                break;
            }
        }
        let reduced: Vec<Vec<f64>> =
            rows.iter().map(|r| retained.iter().map(|&k| pcs.project(r, k)).collect()).collect();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let km = KMeans::fit(&reduced, opts.clusters, 100, &mut rng)
            .ok_or_else(|| BaselineError::Degenerate("kmeans on empty data".into()))?;
        let gaussian = MultivariateGaussian::fit(&reduced, retained.len(), 1e-6)
            .map_err(|e| BaselineError::Degenerate(format!("covariance: {e}")))?;
        Ok(PcaSpll { attributes, pcs, retained, clusters: km.centroids, gaussian })
    }

    /// Number of retained (low-variance) components.
    pub fn retained_components(&self) -> usize {
        self.retained.len()
    }

    /// SPLL drift statistic of a window (mean min-cluster squared
    /// Mahalanobis distance in the reduced space).
    ///
    /// # Errors
    /// Fails when the window lacks the reference's numeric attributes.
    pub fn drift(&self, window: &DataFrame) -> Result<f64, BaselineError> {
        let rows = crate::rows_for(window, &self.attributes)?;
        if rows.is_empty() {
            return Ok(0.0);
        }
        let inv = self.gaussian.inv_cov();
        let mut total = 0.0;
        for r in &rows {
            let reduced: Vec<f64> = self.retained.iter().map(|&k| self.pcs.project(r, k)).collect();
            let mut best = f64::INFINITY;
            for c in &self.clusters {
                let d = cc_stats::mahalanobis_sq(&reduced, c, inv);
                best = best.min(d);
            }
            total += best;
        }
        Ok(total / rows.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_frame(cx: f64, cy: f64, corr: f64, n: usize, seed: u64) -> DataFrame {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            xs.push(cx + a);
            ys.push(cy + corr * a + (1.0 - corr) * b);
        }
        let mut df = DataFrame::new();
        df.push_numeric("x", xs).unwrap();
        df.push_numeric("y", ys).unwrap();
        df
    }

    #[test]
    fn no_drift_on_same_distribution() {
        let reference = blob_frame(0.0, 0.0, 0.8, 800, 1);
        let det = PcaSpll::fit(&reference, &SpllOptions::default()).unwrap();
        let same = blob_frame(0.0, 0.0, 0.8, 400, 2);
        let shifted = blob_frame(3.0, -3.0, 0.8, 400, 3);
        let d_same = det.drift(&same).unwrap();
        let d_shift = det.drift(&shifted).unwrap();
        assert!(d_shift > 3.0 * d_same, "same {d_same} vs shifted {d_shift}");
    }

    #[test]
    fn correlation_break_detected() {
        // Low-variance components track the correlation structure: breaking
        // it must register even when means stay put.
        let reference = blob_frame(0.0, 0.0, 0.95, 800, 4);
        let det = PcaSpll::fit(&reference, &SpllOptions::default()).unwrap();
        let decorrelated = blob_frame(0.0, 0.0, 0.0, 400, 5);
        let base = det.drift(&blob_frame(0.0, 0.0, 0.95, 400, 6)).unwrap();
        let broken = det.drift(&decorrelated).unwrap();
        assert!(broken > 2.0 * base, "base {base} vs broken {broken}");
    }

    #[test]
    fn retains_low_variance_subset() {
        let reference = blob_frame(0.0, 0.0, 0.9, 500, 7);
        let det = PcaSpll::fit(&reference, &SpllOptions::default()).unwrap();
        // 2D with strong correlation: the low-variance PC explains < 25%,
        // so exactly one component is retained.
        assert_eq!(det.retained_components(), 1);
    }

    #[test]
    fn empty_reference_rejected() {
        let df = DataFrame::new();
        assert!(PcaSpll::fit(&df, &SpllOptions::default()).is_err());
    }
}
