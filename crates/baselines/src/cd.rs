//! CD — the PCA-based change-detection framework of Qahtan et al.
//! (KDD 2015), in its two divergence flavors (CD-MKL and CD-Area).
//!
//! Opposite philosophy to the paper (and to PCA-SPLL): project the data on
//! the **top high-variance** principal components, estimate each
//! component's density with a histogram, and report the *maximum*
//! divergence across components between the reference window and a test
//! window.

use crate::pca_spll::BaselineError;
use cc_frame::DataFrame;
use cc_linalg::pca::{pca, PrincipalComponents};
use cc_stats::{intersection_area, max_symmetric_kl, scott_bins, Histogram};

/// Divergence flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CdDivergence {
    /// Maximum symmetric KL divergence between per-component densities.
    MaxKl,
    /// `1 −` intersection area between per-component densities.
    Area,
}

/// Configuration for [`ChangeDetection`].
#[derive(Clone, Debug)]
pub struct CdOptions {
    /// Keep top components until this fraction of variance is explained.
    pub variance_threshold: f64,
    /// Divergence flavor.
    pub divergence: CdDivergence,
}

impl Default for CdOptions {
    fn default() -> Self {
        CdOptions { variance_threshold: 0.99, divergence: CdDivergence::Area }
    }
}

/// A fitted CD detector.
#[derive(Clone, Debug)]
pub struct ChangeDetection {
    attributes: Vec<String>,
    pcs: PrincipalComponents,
    /// Retained component indices (ascending-variance indexing; these are
    /// the top of the spectrum).
    retained: Vec<usize>,
    /// Reference histogram per retained component (defines shared edges).
    reference_hists: Vec<Histogram>,
    divergence: CdDivergence,
}

impl ChangeDetection {
    /// Fits on a reference window.
    ///
    /// # Errors
    /// Fails on empty references.
    pub fn fit(reference: &DataFrame, opts: &CdOptions) -> Result<Self, BaselineError> {
        let (attributes, rows) = crate::numeric_rows(reference)?;
        if rows.is_empty() || attributes.is_empty() {
            return Err(BaselineError::Degenerate("empty reference".into()));
        }
        let pcs = pca(&rows, attributes.len())
            .map_err(|e| BaselineError::Degenerate(format!("pca failed: {e}")))?;
        // Components ascend by variance; walk from the top down.
        let ratios = pcs.explained_variance_ratio();
        let mut retained = Vec::new();
        let mut cum = 0.0;
        for k in (0..ratios.len()).rev() {
            retained.push(k);
            cum += ratios[k];
            if cum >= opts.variance_threshold {
                break;
            }
        }
        let mut reference_hists = Vec::with_capacity(retained.len());
        for &k in &retained {
            let proj: Vec<f64> = rows.iter().map(|r| pcs.project(r, k)).collect();
            let bins = scott_bins(&proj);
            reference_hists.push(Histogram::fit(&proj, bins));
        }
        Ok(ChangeDetection {
            attributes,
            pcs,
            retained,
            reference_hists,
            divergence: opts.divergence,
        })
    }

    /// Number of retained (high-variance) components.
    pub fn retained_components(&self) -> usize {
        self.retained.len()
    }

    /// Divergence of a window from the reference: the maximum, across
    /// retained components, of the chosen density divergence.
    ///
    /// # Errors
    /// Fails when the window lacks the reference's numeric attributes.
    pub fn drift(&self, window: &DataFrame) -> Result<f64, BaselineError> {
        let rows = crate::rows_for(window, &self.attributes)?;
        if rows.is_empty() {
            return Ok(0.0);
        }
        let mut worst = 0.0f64;
        for (&k, ref_hist) in self.retained.iter().zip(&self.reference_hists) {
            let mut win_hist = ref_hist.like();
            for r in &rows {
                win_hist.add(self.pcs.project(r, k));
            }
            let d = match self.divergence {
                CdDivergence::MaxKl => {
                    max_symmetric_kl(&ref_hist.smoothed_densities(), &win_hist.smoothed_densities())
                }
                CdDivergence::Area => {
                    1.0 - intersection_area(&ref_hist.densities(), &win_hist.densities())
                }
            };
            worst = worst.max(d);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob(cx: f64, cy: f64, n: usize, seed: u64) -> DataFrame {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            xs.push(cx + rng.gen_range(-1.0..1.0));
            ys.push(cy + rng.gen_range(-1.0..1.0));
        }
        let mut df = DataFrame::new();
        df.push_numeric("x", xs).unwrap();
        df.push_numeric("y", ys).unwrap();
        df
    }

    #[test]
    fn mean_shift_detected_by_both_flavors() {
        let reference = blob(0.0, 0.0, 1000, 1);
        for div in [CdDivergence::MaxKl, CdDivergence::Area] {
            let det = ChangeDetection::fit(
                &reference,
                &CdOptions { divergence: div, ..Default::default() },
            )
            .unwrap();
            let same = det.drift(&blob(0.0, 0.0, 500, 2)).unwrap();
            let moved = det.drift(&blob(4.0, 0.0, 500, 3)).unwrap();
            assert!(moved > 4.0 * same.max(1e-6), "{div:?}: same {same}, moved {moved}");
        }
    }

    #[test]
    fn area_bounded_by_one() {
        let reference = blob(0.0, 0.0, 500, 4);
        let det = ChangeDetection::fit(&reference, &CdOptions::default()).unwrap();
        let far = det.drift(&blob(100.0, 100.0, 300, 5)).unwrap();
        assert!(far <= 1.0 + 1e-9);
        assert!(far > 0.9);
    }

    #[test]
    fn retains_high_variance_components() {
        // Strongly anisotropic data: one dominant direction.
        let mut rng = StdRng::seed_from_u64(6);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..800 {
            let t: f64 = rng.gen_range(-10.0..10.0);
            xs.push(t);
            ys.push(0.01 * t + rng.gen_range(-0.05..0.05));
        }
        let mut df = DataFrame::new();
        df.push_numeric("x", xs).unwrap();
        df.push_numeric("y", ys).unwrap();
        let det = ChangeDetection::fit(
            &df,
            &CdOptions { variance_threshold: 0.99, ..Default::default() },
        )
        .unwrap();
        assert_eq!(det.retained_components(), 1, "only the dominant PC is needed");
    }

    #[test]
    fn empty_window_zero_drift() {
        let reference = blob(0.0, 0.0, 300, 7);
        let det = ChangeDetection::fit(&reference, &CdOptions::default()).unwrap();
        let empty = DataFrame::new();
        // An empty frame lacks the columns → frame error is acceptable; an
        // empty-but-schema'd frame yields 0.
        let mut schema_only = DataFrame::new();
        schema_only.push_numeric("x", vec![]).unwrap();
        schema_only.push_numeric("y", vec![]).unwrap();
        assert_eq!(det.drift(&schema_only).unwrap(), 0.0);
        assert!(det.drift(&empty).is_err());
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use cc_frame::DataFrame;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob(cx: f64, n: usize, seed: u64) -> DataFrame {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            xs.push(cx + rng.gen_range(-1.0..1.0));
            ys.push(rng.gen_range(-1.0..1.0));
        }
        let mut df = DataFrame::new();
        df.push_numeric("x", xs).unwrap();
        df.push_numeric("y", ys).unwrap();
        df
    }

    #[test]
    fn variance_change_without_mean_shift_detected() {
        // Same mean, 4x wider spread: the per-component densities flatten.
        let reference = blob(0.0, 1500, 21);
        let det = ChangeDetection::fit(&reference, &CdOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..700 {
            xs.push(rng.gen_range(-4.0..4.0));
            ys.push(rng.gen_range(-4.0..4.0));
        }
        let mut wide = DataFrame::new();
        wide.push_numeric("x", xs).unwrap();
        wide.push_numeric("y", ys).unwrap();
        let base = det.drift(&blob(0.0, 700, 23)).unwrap();
        let spread = det.drift(&wide).unwrap();
        assert!(spread > 2.0 * base.max(0.02), "base {base} vs spread {spread}");
    }

    #[test]
    fn mkl_exceeds_or_equals_one_sided_kl() {
        let reference = blob(0.0, 800, 24);
        let det = ChangeDetection::fit(
            &reference,
            &CdOptions { divergence: CdDivergence::MaxKl, ..Default::default() },
        )
        .unwrap();
        // MKL drift is non-negative and finite thanks to smoothing.
        let d = det.drift(&blob(2.0, 400, 25)).unwrap();
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn lower_variance_threshold_keeps_fewer_components() {
        let reference = blob(0.0, 800, 26);
        let strict = ChangeDetection::fit(
            &reference,
            &CdOptions { variance_threshold: 0.5, ..Default::default() },
        )
        .unwrap();
        let loose = ChangeDetection::fit(
            &reference,
            &CdOptions { variance_threshold: 0.9999, ..Default::default() },
        )
        .unwrap();
        assert!(strict.retained_components() <= loose.retained_components());
        assert_eq!(loose.retained_components(), 2);
    }
}
