//! Multivariate statistics: covariance matrices, Mahalanobis distances, and
//! a regularized multivariate Gaussian — the machinery behind the PCA-SPLL
//! drift baseline (Kuncheva & Faithfull, 2014).

use cc_linalg::solve::{spd_inverse, SolveError};
use cc_linalg::{Gram, Matrix};

/// Population covariance matrix of `rows` (each of dimension `dim`),
/// together with the column means.
pub fn covariance_matrix(rows: &[Vec<f64>], dim: usize) -> (Vec<f64>, Matrix) {
    let n = rows.len();
    if n == 0 {
        return (vec![0.0; dim], Matrix::zeros(dim, dim));
    }
    let mut means = vec![0.0; dim];
    for r in rows {
        assert_eq!(r.len(), dim, "covariance_matrix: dimension mismatch");
        for (m, x) in means.iter_mut().zip(r) {
            *m += x;
        }
    }
    for m in means.iter_mut() {
        *m /= n as f64;
    }
    let mut g = Gram::new(dim);
    let mut c = vec![0.0; dim];
    for r in rows {
        for ((ci, x), m) in c.iter_mut().zip(r).zip(&means) {
            *ci = x - m;
        }
        g.update(&c);
    }
    let mut cov = g.finish();
    cov.scale_in_place(1.0 / n as f64);
    (means, cov)
}

/// Squared Mahalanobis distance `(x−μ)ᵀ Σ⁻¹ (x−μ)` given a precomputed
/// inverse covariance.
pub fn mahalanobis_sq(x: &[f64], mu: &[f64], inv_cov: &Matrix) -> f64 {
    let d: Vec<f64> = x.iter().zip(mu).map(|(a, b)| a - b).collect();
    let v = inv_cov.matvec(&d);
    cc_linalg::vector::dot(&d, &v).max(0.0)
}

/// A multivariate Gaussian with ridge-regularized covariance, fitted from
/// samples. SPLL models each cluster with such a Gaussian (sharing the
/// covariance across clusters in the original paper; we fit it on the whole
/// reference window, which is the common simplification).
#[derive(Clone, Debug)]
pub struct MultivariateGaussian {
    /// Mean vector.
    pub mean: Vec<f64>,
    inv_cov: Matrix,
    log_det: f64,
    dim: usize,
}

impl MultivariateGaussian {
    /// Fits mean and covariance from `rows`, adding `ridge` to the diagonal
    /// until the covariance is invertible (escalating ×10 a few times if
    /// needed — degenerate directions are common after PCA reduction).
    pub fn fit(rows: &[Vec<f64>], dim: usize, ridge: f64) -> Result<Self, SolveError> {
        let (mean, mut cov) = covariance_matrix(rows, dim);
        let mut reg = ridge.max(1e-9);
        for _attempt in 0..8 {
            let mut c = cov.clone();
            for i in 0..dim {
                c[(i, i)] += reg;
            }
            match (spd_inverse(&c), cc_linalg::solve::Cholesky::new(&c)) {
                (Ok(inv_cov), Ok(ch)) => {
                    return Ok(MultivariateGaussian { mean, inv_cov, log_det: ch.log_det(), dim })
                }
                _ => reg *= 10.0,
            }
        }
        // Give the diagonal one more, much larger, boost before failing.
        for i in 0..dim {
            cov[(i, i)] += 1.0;
        }
        let inv_cov = spd_inverse(&cov)?;
        let log_det = cc_linalg::solve::Cholesky::new(&cov)?.log_det();
        Ok(MultivariateGaussian { mean, inv_cov, log_det, dim })
    }

    /// Squared Mahalanobis distance of a point from the mean.
    pub fn mahalanobis_sq(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "mahalanobis_sq: dimension mismatch");
        mahalanobis_sq(x, &self.mean, &self.inv_cov)
    }

    /// Log-density of a point.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        let d2 = self.mahalanobis_sq(x);
        -0.5 * (d2 + self.log_det + self.dim as f64 * (2.0 * std::f64::consts::PI).ln())
    }

    /// Inverse covariance matrix (for cluster-shared use in SPLL).
    pub fn inv_cov(&self) -> &Matrix {
        &self.inv_cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        // Deterministic pseudo-random blob around (cx, cy).
        (0..n)
            .map(|i| {
                let a = ((i * 7919) % 1000) as f64 / 1000.0 - 0.5;
                let b = ((i * 104729) % 1000) as f64 / 1000.0 - 0.5;
                vec![cx + a, cy + b]
            })
            .collect()
    }

    #[test]
    fn covariance_of_uncorrelated_blob() {
        let rows = blob(3.0, -1.0, 500);
        let (means, cov) = covariance_matrix(&rows, 2);
        assert!((means[0] - 3.0).abs() < 0.05);
        assert!((means[1] + 1.0).abs() < 0.05);
        // Uniform(-0.5,0.5) variance = 1/12 ≈ 0.0833.
        assert!((cov[(0, 0)] - 1.0 / 12.0).abs() < 0.02);
        assert!(cov[(0, 1)].abs() < 0.02);
    }

    #[test]
    fn covariance_empty() {
        let (m, c) = covariance_matrix(&[], 2);
        assert_eq!(m, vec![0.0, 0.0]);
        assert_eq!(c.trace(), 0.0);
    }

    #[test]
    fn mahalanobis_identity_cov_is_euclidean_sq() {
        let inv = Matrix::identity(2);
        let d2 = mahalanobis_sq(&[3.0, 4.0], &[0.0, 0.0], &inv);
        assert!((d2 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_fit_distances() {
        let rows = blob(0.0, 0.0, 1000);
        let g = MultivariateGaussian::fit(&rows, 2, 1e-9).unwrap();
        // Center has near-zero distance; a far point has large distance.
        assert!(g.mahalanobis_sq(&[0.0, 0.0]) < 0.1);
        assert!(g.mahalanobis_sq(&[5.0, 5.0]) > 100.0);
        // log_pdf decreases away from the mean.
        assert!(g.log_pdf(&[0.0, 0.0]) > g.log_pdf(&[2.0, 2.0]));
    }

    #[test]
    fn gaussian_fit_degenerate_data_regularizes() {
        // Perfectly collinear data: covariance is singular; ridge must save it.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let g = MultivariateGaussian::fit(&rows, 2, 1e-6).unwrap();
        assert!(g.mahalanobis_sq(&[0.0, 0.0]).is_finite());
    }
}
