//! Divergence measures between discrete densities.
//!
//! These implement the two divergence options of the CD baseline
//! (Qahtan et al., KDD 2015): maximum symmetric KL divergence (CD-MKL) and
//! the complement of the intersection area of two density curves (CD-Area).

/// Kullback–Leibler divergence `KL(p ‖ q)` between two discrete densities.
///
/// Bins where `p = 0` contribute nothing; bins where `q = 0` but `p > 0`
/// would be infinite, so callers should pass smoothed densities
/// ([`crate::Histogram::smoothed_densities`]).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl_divergence: length mismatch");
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi > 0.0 {
                kl += pi * (pi / qi).ln();
            } else {
                return f64::INFINITY;
            }
        }
    }
    kl.max(0.0)
}

/// Symmetric KL: `max(KL(p‖q), KL(q‖p))` — the "Maximum KL" divergence of
/// CD-MKL.
pub fn max_symmetric_kl(p: &[f64], q: &[f64]) -> f64 {
    kl_divergence(p, q).max(kl_divergence(q, p))
}

/// Intersection area of two discrete densities: `Σ min(pᵢ, qᵢ)` ∈ [0, 1]
/// for proper densities. CD-Area uses `1 − intersection` as the divergence.
pub fn intersection_area(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "intersection_area: length mismatch");
    p.iter().zip(q).map(|(&a, &b)| a.min(b)).sum()
}

/// Total-variation distance `½ Σ |pᵢ − qᵢ|` — equals `1 − intersection`
/// for proper densities; exposed for tests and alternative baselines.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "total_variation: length mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-15);
        assert!(max_symmetric_kl(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn kl_known_value() {
        // KL([1,0] || [0.5,0.5]) = ln 2.
        let p = [1.0, 0.0];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_when_unsupported() {
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn symmetric_kl_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.2, 0.3, 0.5];
        assert_eq!(max_symmetric_kl(&p, &q), max_symmetric_kl(&q, &p));
        assert!(max_symmetric_kl(&p, &q) >= kl_divergence(&p, &q));
    }

    #[test]
    fn intersection_bounds() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!((intersection_area(&p, &q) - 0.5).abs() < 1e-15);
        assert!((intersection_area(&p, &p) - 1.0).abs() < 1e-15);
        let disjoint = intersection_area(&[1.0, 0.0], &[0.0, 1.0]);
        assert_eq!(disjoint, 0.0);
    }

    #[test]
    fn tv_complements_intersection() {
        let p = [0.6, 0.3, 0.1];
        let q = [0.1, 0.3, 0.6];
        let tv = total_variation(&p, &q);
        let inter = intersection_area(&p, &q);
        assert!((tv - (1.0 - inter)).abs() < 1e-12);
    }
}
