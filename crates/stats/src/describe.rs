//! Descriptive statistics.
//!
//! All variances/standard deviations are **population** statistics (divide
//! by n), matching the paper's σ(F(D)) definition (Example 4 computes
//! σ({0, −5, 5, −2}) = 3.6, which is the population value).

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the long streams the synthesis pipeline sees.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary over a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.update(v);
        }
        s
    }

    /// Adds one observation.
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary (parallel-reduction step; Chan et al.).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Count of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by n; 0 for an empty summary).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    Summary::of(values).mean()
}

/// Population variance of a slice.
pub fn population_variance(values: &[f64]) -> f64 {
    Summary::of(values).variance()
}

/// Population standard deviation of a slice.
pub fn population_std(values: &[f64]) -> f64 {
    Summary::of(values).std()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// This is the paper's ρ_{F1,F2} (§4.1.2) when applied to projection outputs.
/// Returns 0 when either side has zero variance (correlation undefined —
/// by convention uncorrelated, matching the use in Theorem 12/13 where
/// zero-variance projections are handled separately).
pub fn pcc(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pcc: length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
}

/// `p`-quantile (0 ≤ p ≤ 1) by linear interpolation over a sorted copy.
pub fn quantile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile: p must be in [0,1]");
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Min-max normalizes a series into `[0,1]` in place; a constant series maps
/// to all zeros. Used by the Fig-8 harness, which (like the paper)
/// normalizes each method's drift magnitudes before plotting.
pub fn min_max_normalize(values: &mut [f64]) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    for v in values.iter_mut() {
        *v = if range > 0.0 { (*v - lo) / range } else { 0.0 };
    }
}

/// Area under the ROC curve of `score` as a detector of `positive` labels:
/// the probability a random positive outscores a random negative (ties
/// count ½). Returns 0.5 when either class is empty.
///
/// Used to quantify how well violation scores separate unsafe tuples.
pub fn roc_auc(scores: &[f64], positive: &[bool]) -> f64 {
    assert_eq!(scores.len(), positive.len(), "roc_auc: length mismatch");
    let mut pairs: Vec<(f64, bool)> =
        scores.iter().copied().zip(positive.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank-sum (Mann–Whitney) with midranks for ties.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let midrank = (i + j + 1) as f64 / 2.0; // average of 1-based ranks i+1..j
        for p in &pairs[i..j] {
            if p.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [true, true, false, false];
        assert!(roc_auc(&scores, &inverted).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
    }

    #[test]
    fn auc_partial() {
        // One inversion among 2 pos × 2 neg pairs: AUC = 3/4.
        let scores = [0.1, 0.8, 0.3, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn paper_example_4_std() {
        // σ({0, −5, 5, −2}) ≈ 3.6 in the paper (population std).
        let s = population_std(&[0.0, -5.0, 5.0, -2.0]);
        assert!((s - 3.6).abs() < 0.05, "got {s}");
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [1.0, 5.0, -3.0, 2.0];
        let b = [10.0, 0.0, 4.0];
        let mut sa = Summary::of(&a);
        let sb = Summary::of(&b);
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let sall = Summary::of(&all);
        assert_eq!(sa.count(), sall.count());
        assert!((sa.mean() - sall.mean()).abs() < 1e-12);
        assert!((sa.variance() - sall.variance()).abs() < 1e-12);
    }

    #[test]
    fn pcc_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pcc(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pcc(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pcc_zero_variance_is_zero() {
        assert_eq!(pcc(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pcc_uncorrelated() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pcc(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert!((quantile(&v, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_normalize() {
        let mut v = vec![2.0, 4.0, 6.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        let mut c = vec![3.0, 3.0];
        min_max_normalize(&mut c);
        assert_eq!(c, vec![0.0, 0.0]);
    }
}
