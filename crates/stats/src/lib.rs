//! # cc-stats
//!
//! Statistics substrate: descriptive statistics (single-pass Welford),
//! Pearson correlation, covariance matrices, equal-width histograms, and the
//! divergence measures used by the drift-detection baselines of the paper's
//! §6.2 (KL divergence for CD-MKL, histogram-intersection area for CD-Area,
//! Mahalanobis distances for PCA-SPLL).

pub mod describe;
pub mod divergence;
pub mod histogram;
pub mod multivariate;

pub use describe::{
    mean, min_max_normalize, pcc, population_std, population_variance, quantile, roc_auc, Summary,
};
pub use divergence::{intersection_area, kl_divergence, max_symmetric_kl, total_variation};
pub use histogram::{scott_bins, Histogram};
pub use multivariate::{covariance_matrix, mahalanobis_sq, MultivariateGaussian};
