//! Equal-width histograms as discrete density estimates.
//!
//! The CD baseline (Qahtan et al., KDD 2015) estimates per-principal-
//! component densities with histograms over a reference window and a sliding
//! window, then compares them with a divergence measure. The histogram here
//! deliberately supports *shared bin edges* across two samples so densities
//! are comparable bin-by-bin.

/// An equal-width histogram over a fixed range.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi]`. Values outside the range are clamped into the first /
    /// last bin (the CD baseline needs every serving point accounted for).
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` is not satisfiable (`lo > hi`).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Builds a histogram of `values` with the given bin count over the
    /// values' own min-max range.
    pub fn fit(values: &[f64], bins: usize) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        if lo == hi {
            // Degenerate constant sample: widen artificially.
            hi = lo + 1.0;
        }
        let mut h = Histogram::new(lo, hi, bins);
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Index of the bin a value falls into (after clamping).
    fn bin_of(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return bins - 1;
        }
        let w = (self.hi - self.lo) / bins as f64;
        (((x - self.lo) / w) as usize).min(bins - 1)
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// An empty histogram with the same bin edges (for the second sample).
    pub fn like(&self) -> Histogram {
        Histogram { lo: self.lo, hi: self.hi, counts: vec![0; self.counts.len()], total: 0 }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Probability mass per bin. All zeros when the histogram is empty.
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Laplace-smoothed probability mass per bin (adds one pseudo-count per
    /// bin) — keeps KL divergence finite for bins empty on one side.
    pub fn smoothed_densities(&self) -> Vec<f64> {
        let bins = self.counts.len() as f64;
        let denom = self.total as f64 + bins;
        self.counts.iter().map(|&c| (c as f64 + 1.0) / denom).collect()
    }
}

/// Scott's normal-reference rule for bin count: `⌈(max−min)/h⌉` with
/// `h = 3.49·σ·n^(−1/3)`; clamped to `[4, 256]`. The CD paper uses a
/// comparable data-driven bin count.
pub fn scott_bins(values: &[f64]) -> usize {
    let n = values.len();
    if n < 2 {
        return 4;
    }
    let s = crate::describe::population_std(values);
    if s <= 0.0 {
        return 4;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let h = 3.49 * s * (n as f64).powf(-1.0 / 3.0);
    (((hi - lo) / h).ceil() as usize).clamp(4, 256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_densities() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::fit(&vals, 10);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.total(), 100);
        let d = h.densities();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Uniform data → roughly uniform bins.
        for &p in &d {
            assert!((p - 0.1).abs() <= 0.02, "bin mass {p}");
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn like_shares_edges() {
        let base = Histogram::fit(&[0.0, 1.0, 2.0, 3.0], 4);
        let mut h2 = base.like();
        assert_eq!(h2.bins(), base.bins());
        assert_eq!(h2.total(), 0);
        h2.add(1.5);
        assert_eq!(h2.total(), 1);
    }

    #[test]
    fn constant_sample_widens() {
        let h = Histogram::fit(&[5.0, 5.0, 5.0], 4);
        assert_eq!(h.total(), 3);
        // All mass in bin 0 because range widened to [5,6].
        assert_eq!(h.counts()[0], 3);
    }

    #[test]
    fn smoothing_never_zero() {
        let h = Histogram::fit(&[0.0, 10.0], 5);
        let s = h.smoothed_densities();
        assert!(s.iter().all(|&p| p > 0.0));
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scott_rule_sane() {
        let uniform: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
        let b = scott_bins(&uniform);
        assert!((4..=256).contains(&b));
        assert_eq!(scott_bins(&[1.0]), 4);
        assert_eq!(scott_bins(&[2.0, 2.0, 2.0]), 4);
    }

    #[test]
    fn empty_histogram_densities_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.densities(), vec![0.0, 0.0, 0.0]);
    }
}
