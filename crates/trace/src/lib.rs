//! `cc_trace` — a dependency-free flight recorder for the ccsynth stack.
//!
//! Spans and events are written into **lock-free per-thread ring buffers**:
//! fixed capacity, overwrite-oldest, monotonic clocks, and never an
//! allocation or a mutex on the recording path. Each slot is a per-slot
//! seqlock built from plain `AtomicU64` words (odd sequence = write in
//! progress), so a drain can run concurrently with recording and simply
//! discards any slot it catches mid-write — no reader can ever block a
//! writer, and a writer never waits for anything.
//!
//! Alongside the rings, the recorder keeps **cumulative per-phase
//! aggregates** (count / sum / log-bucketed histogram, all atomics): the
//! rings answer "what happened recently, in detail" while the aggregates
//! answer "how do phases distribute over the process lifetime" — these are
//! deterministic and mergeable, which is what a fleet coordinator needs.
//!
//! The recorder is process-global: capacity is set once via
//! [`set_buffer`] (`0` disables recording entirely; the hot path then
//! costs a single relaxed atomic load). Callers that need finer scoping
//! (e.g. one server instance traced, another not) gate at the call site.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant, SystemTime};

/// Default per-thread ring capacity (spans per thread).
pub const DEFAULT_BUFFER: usize = 4096;

/// Bytes of tag text stored inline in a span (longer tags are truncated).
pub const TAG_CAP: usize = 24;

/// Histogram bucket upper edges in microseconds; the final implicit
/// bucket is +Inf. Decade edges from 10µs to 10s.
pub const BUCKET_EDGES_US: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

const BUCKETS: usize = BUCKET_EDGES_US.len() + 1;

/// The fixed phase taxonomy. Spans carry a phase rather than a free-form
/// name so slots stay POD (a torn read can never fabricate a pointer) and
/// aggregates stay a fixed-size array of atomics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Phase {
    // Server request lifecycle.
    Parse,
    QueueWait,
    Handle,
    Write,
    // Ingest pipeline (two-phase commit inside `MonitorEntry::ingest`).
    Score,
    AdmissionWait,
    TurnWait,
    Commit,
    /// Event: a monitor window closed (tag = monitor, extra = window index).
    WindowClose,
    // `cc_state` snapshot writes.
    Serialize,
    Fsync,
    Rename,
    /// Event: one epoll wake (extra = ready-event count).
    ReactorWake,
    /// Event: a reactor mailbox drain (extra = messages drained).
    MailboxDepth,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 14] = [
        Phase::Parse,
        Phase::QueueWait,
        Phase::Handle,
        Phase::Write,
        Phase::Score,
        Phase::AdmissionWait,
        Phase::TurnWait,
        Phase::Commit,
        Phase::WindowClose,
        Phase::Serialize,
        Phase::Fsync,
        Phase::Rename,
        Phase::ReactorWake,
        Phase::MailboxDepth,
    ];

    /// The four server request-lifecycle phases, in pipeline order.
    pub const SERVER: [Phase; 4] = [Phase::Parse, Phase::QueueWait, Phase::Handle, Phase::Write];

    /// The four ingest-pipeline phases, in pipeline order.
    pub const MONITOR: [Phase; 4] =
        [Phase::Score, Phase::AdmissionWait, Phase::TurnWait, Phase::Commit];

    /// Stable lowercase label (used in `/v1/trace` and metric labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::QueueWait => "queue_wait",
            Phase::Handle => "handle",
            Phase::Write => "write",
            Phase::Score => "score",
            Phase::AdmissionWait => "admission_wait",
            Phase::TurnWait => "turn_wait",
            Phase::Commit => "commit",
            Phase::WindowClose => "window_close",
            Phase::Serialize => "serialize",
            Phase::Fsync => "fsync",
            Phase::Rename => "rename",
            Phase::ReactorWake => "reactor_wake",
            Phase::MailboxDepth => "mailbox_depth",
        }
    }

    fn from_raw(raw: u64) -> Option<Phase> {
        Phase::ALL.get(raw as usize).copied()
    }
}

/// A drained span, decoded from ring slots into owned data.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub phase: Phase,
    pub trace_id: u64,
    pub tag: String,
    pub extra: u64,
    /// Microseconds since the process trace epoch (monotonic).
    pub start_us: u64,
    pub dur_us: u64,
}

/// Cumulative per-phase aggregate: mergeable, never reset.
#[derive(Clone, Debug)]
pub struct PhaseTotal {
    pub phase: Phase,
    pub count: u64,
    pub sum_us: u64,
    pub buckets: [u64; BUCKETS],
}

impl PhaseTotal {
    /// A zeroed total for `phase`.
    pub fn empty(phase: Phase) -> PhaseTotal {
        PhaseTotal { phase, count: 0, sum_us: 0, buckets: [0; BUCKETS] }
    }

    /// Mean span duration in microseconds (`0.0` when no spans recorded).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// What accumulated between `earlier` and `self` — the interval
    /// aggregate a periodic sampler needs from two cumulative snapshots.
    /// Saturating, so a cell observed mid-update (count and sum are
    /// independent atomics) can never produce wrapped garbage.
    ///
    /// # Panics
    /// If the two totals describe different phases.
    pub fn delta_since(&self, earlier: &PhaseTotal) -> PhaseTotal {
        assert_eq!(self.phase, earlier.phase, "delta_since across different phases");
        let mut buckets = [0u64; BUCKETS];
        for (b, (now, then)) in buckets.iter_mut().zip(self.buckets.iter().zip(&earlier.buckets)) {
            *b = now.saturating_sub(*then);
        }
        PhaseTotal {
            phase: self.phase,
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            buckets,
        }
    }
}

/// Pairwise [`PhaseTotal::delta_since`] over two [`phase_totals`]-shaped
/// snapshots (matched by phase; phases absent from `earlier` pass through
/// unchanged).
pub fn phase_deltas(now: &[PhaseTotal], earlier: &[PhaseTotal]) -> Vec<PhaseTotal> {
    now.iter()
        .map(|t| match earlier.iter().find(|e| e.phase == t.phase) {
            Some(e) => t.delta_since(e),
            None => t.clone(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ring storage: per-slot seqlock over plain atomic words.
// ---------------------------------------------------------------------------

/// One span packed into eight u64 words:
/// `[trace_id, phase | tag_len << 16, tag0, tag1, tag2, extra, start_us, dur_us]`.
const WORDS: usize = 8;

struct Slot {
    /// Even = stable, odd = write in progress. A reader accepts a slot
    /// only if it observes the same even value before and after copying.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Slot = Slot {
        seq: AtomicU64::new(0),
        words: [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ],
    };
}

/// A fixed-capacity overwrite-oldest span ring. Writes are wait-free for
/// a single producer (the owning thread); drains from any thread are
/// non-blocking and skip slots caught mid-write.
pub struct SpanRing {
    slots: Vec<Slot>,
    /// Total spans ever pushed; `head % capacity` is the next write slot.
    head: AtomicU64,
}

impl SpanRing {
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot::EMPTY);
        }
        SpanRing { slots, head: AtomicU64::new(0) }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans ever pushed (not the currently retained count).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one span. Overwrites the oldest slot once full.
    pub fn push(
        &self,
        phase: Phase,
        trace_id: u64,
        tag: &str,
        extra: u64,
        start_us: u64,
        dur_us: u64,
    ) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];

        let tag = tag.as_bytes();
        let tag_len = tag.len().min(TAG_CAP);
        let mut packed = [0u64; 3];
        for (i, &b) in tag[..tag_len].iter().enumerate() {
            packed[i / 8] |= (b as u64) << ((i % 8) * 8);
        }

        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release); // odd seq visible before any data word
        slot.words[0].store(trace_id, Ordering::Relaxed);
        slot.words[1].store(phase as u64 | ((tag_len as u64) << 16), Ordering::Relaxed);
        slot.words[2].store(packed[0], Ordering::Relaxed);
        slot.words[3].store(packed[1], Ordering::Relaxed);
        slot.words[4].store(packed[2], Ordering::Relaxed);
        slot.words[5].store(extra, Ordering::Relaxed);
        slot.words[6].store(start_us, Ordering::Relaxed);
        slot.words[7].store(dur_us, Ordering::Relaxed);
        fence(Ordering::Release); // all data words visible before even seq
        slot.seq.store(seq.wrapping_add(2), Ordering::Relaxed);
        self.head.store(h.wrapping_add(1), Ordering::Release);
    }

    /// Copy out the retained spans, oldest first. Slots overwritten or
    /// mid-write during the scan are skipped, never torn.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i % cap) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or write in progress
            }
            let mut w = [0u64; WORDS];
            for (j, word) in slot.words.iter().enumerate() {
                w[j] = word.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while copying
            }
            let Some(phase) = Phase::from_raw(w[1] & 0xffff) else {
                continue;
            };
            let tag_len = ((w[1] >> 16) as usize).min(TAG_CAP);
            let mut tag_bytes = [0u8; TAG_CAP];
            for (k, byte) in tag_bytes[..tag_len].iter_mut().enumerate() {
                *byte = ((w[2 + k / 8] >> ((k % 8) * 8)) & 0xff) as u8;
            }
            let tag = String::from_utf8_lossy(&tag_bytes[..tag_len]).into_owned();
            out.push(SpanRecord {
                phase,
                trace_id: w[0],
                tag,
                extra: w[5],
                start_us: w[6],
                dur_us: w[7],
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Global recorder: capacity knob, per-thread ring registry, clock anchor.
// ---------------------------------------------------------------------------

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_BUFFER);
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Weak<SpanRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<SpanRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

thread_local! {
    /// (config epoch, this thread's ring). Replaced when `set_buffer`
    /// changes the configuration.
    static RING: RefCell<Option<(u64, Arc<SpanRing>)>> = const { RefCell::new(None) };
}

/// Set the per-thread ring capacity. `0` disables recording entirely.
/// Existing rings are retired lazily (each thread swaps to a new ring on
/// its next recorded span).
pub fn set_buffer(capacity: usize) {
    let prev = CAPACITY.swap(capacity, Ordering::Relaxed);
    if prev != capacity {
        EPOCH.fetch_add(1, Ordering::Relaxed);
    }
}

/// Current per-thread ring capacity (`0` = disabled).
pub fn buffer_capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Whether the recorder accepts spans at all.
pub fn enabled() -> bool {
    buffer_capacity() > 0
}

/// Microseconds since the process trace epoch for an [`Instant`].
pub fn instant_us(t: Instant) -> u64 {
    t.saturating_duration_since(anchor()).as_micros() as u64
}

/// Microseconds since the process trace epoch, now.
pub fn now_us() -> u64 {
    instant_us(Instant::now())
}

fn with_ring(f: impl FnOnce(&SpanRing)) {
    let epoch = EPOCH.load(Ordering::Relaxed);
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stale = match slot.as_ref() {
            Some((e, _)) => *e != epoch,
            None => true,
        };
        if stale {
            let ring = Arc::new(SpanRing::new(CAPACITY.load(Ordering::Relaxed)));
            let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
            reg.retain(|w| w.strong_count() > 0);
            reg.push(Arc::downgrade(&ring));
            *slot = Some((epoch, ring));
        }
        if let Some((_, ring)) = slot.as_ref() {
            f(ring);
        }
    });
}

/// Record a span with an explicit start instant and duration.
///
/// No-op (one relaxed atomic load) when the recorder is disabled.
pub fn record(phase: Phase, trace_id: u64, tag: &str, extra: u64, start: Instant, dur: Duration) {
    if !enabled() {
        return;
    }
    let dur_us = dur.as_micros().min(u64::MAX as u128) as u64;
    tally(phase, dur_us);
    let start_us = instant_us(start);
    with_ring(|ring| ring.push(phase, trace_id, tag, extra, start_us, dur_us));
}

/// Record an instantaneous event (duration zero, timestamped now).
pub fn event(phase: Phase, trace_id: u64, tag: &str, extra: u64) {
    record(phase, trace_id, tag, extra, Instant::now(), Duration::ZERO);
}

/// Drain every live thread ring into one bounded view: at most `limit`
/// spans, globally ordered by start time, most recent retained.
pub fn snapshot(limit: usize) -> Vec<SpanRecord> {
    let rings: Vec<Arc<SpanRing>> = {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.retain(|w| w.strong_count() > 0);
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    let mut out = Vec::new();
    for ring in rings {
        out.extend(ring.drain());
    }
    out.sort_by_key(|s| (s.start_us, s.trace_id));
    if out.len() > limit {
        out.drain(..out.len() - limit);
    }
    out
}

// ---------------------------------------------------------------------------
// Cumulative per-phase aggregates.
// ---------------------------------------------------------------------------

struct PhaseCell {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl PhaseCell {
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: PhaseCell = PhaseCell {
        count: AtomicU64::new(0),
        sum_us: AtomicU64::new(0),
        buckets: [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ],
    };
}

static CELLS: [PhaseCell; Phase::ALL.len()] = [PhaseCell::EMPTY; Phase::ALL.len()];

fn tally(phase: Phase, dur_us: u64) {
    let cell = &CELLS[phase as usize];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.sum_us.fetch_add(dur_us, Ordering::Relaxed);
    let mut bucket = BUCKET_EDGES_US.len();
    for (i, &edge) in BUCKET_EDGES_US.iter().enumerate() {
        if dur_us <= edge {
            bucket = i;
            break;
        }
    }
    cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
}

/// Read the cumulative aggregate for one phase.
pub fn phase_total(phase: Phase) -> PhaseTotal {
    let cell = &CELLS[phase as usize];
    let mut buckets = [0u64; BUCKETS];
    for (i, b) in cell.buckets.iter().enumerate() {
        buckets[i] = b.load(Ordering::Relaxed);
    }
    PhaseTotal {
        phase,
        count: cell.count.load(Ordering::Relaxed),
        sum_us: cell.sum_us.load(Ordering::Relaxed),
        buckets,
    }
}

/// Read the cumulative aggregates for every phase, in [`Phase::ALL`] order.
pub fn phase_totals() -> Vec<PhaseTotal> {
    Phase::ALL.iter().map(|&p| phase_total(p)).collect()
}

// ---------------------------------------------------------------------------
// Trace ids.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Generate a fresh nonzero trace id (wall-clock nanos mixed with a
/// process-wide counter through FNV-1a; unique enough for correlation,
/// no randomness dependency).
pub fn gen_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&t.to_le_bytes());
    bytes[8..].copy_from_slice(&c.to_le_bytes());
    let h = fnv1a(&bytes);
    if h == 0 {
        1
    } else {
        h
    }
}

/// Parse a client-supplied trace id. Hex strings of 1–16 digits map to
/// their u64 value (so generated ids round-trip exactly); anything else
/// is FNV-hashed so arbitrary tokens still correlate consistently.
pub fn parse_id(s: &str) -> u64 {
    let trimmed = s.trim();
    if !trimmed.is_empty() && trimmed.len() <= 16 {
        if let Ok(v) = u64::from_str_radix(trimmed, 16) {
            if v != 0 {
                return v;
            }
        }
    }
    let h = fnv1a(trimmed.as_bytes());
    if h == 0 {
        1
    } else {
        h
    }
}

/// Canonical wire form of a trace id (16 lowercase hex digits).
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_last_capacity_spans_in_order() {
        let ring = SpanRing::new(8);
        for i in 0..20u64 {
            ring.push(Phase::Handle, 7, "t", i, i * 10, 1);
        }
        let got = ring.drain();
        assert_eq!(got.len(), 8);
        let extras: Vec<u64> = got.iter().map(|s| s.extra).collect();
        assert_eq!(extras, (12..20).collect::<Vec<u64>>());
        assert!(got.iter().all(|s| s.phase == Phase::Handle && s.trace_id == 7));
    }

    #[test]
    fn tags_truncate_and_round_trip() {
        let ring = SpanRing::new(4);
        ring.push(Phase::Score, 1, "monitor-name", 0, 5, 2);
        ring.push(Phase::Commit, 2, &"x".repeat(60), 0, 6, 3);
        let got = ring.drain();
        assert_eq!(got[0].tag, "monitor-name");
        assert_eq!(got[1].tag, "x".repeat(TAG_CAP));
    }

    #[test]
    fn empty_and_partial_rings_skip_untouched_slots() {
        let ring = SpanRing::new(16);
        assert!(ring.drain().is_empty());
        ring.push(Phase::Fsync, 3, "state", 0, 1, 4);
        let got = ring.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].phase, Phase::Fsync);
    }

    #[test]
    fn phase_totals_accumulate_with_buckets() {
        let before = phase_total(Phase::Rename);
        tally(Phase::Rename, 5);
        tally(Phase::Rename, 50_000);
        let after = phase_total(Phase::Rename);
        assert_eq!(after.count, before.count + 2);
        assert_eq!(after.sum_us, before.sum_us + 50_005);
        assert_eq!(after.buckets[0], before.buckets[0] + 1);
        assert_eq!(after.buckets[4], before.buckets[4] + 1);
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let before = phase_total(Phase::Fsync);
        tally(Phase::Fsync, 7);
        tally(Phase::Fsync, 200);
        let after = phase_total(Phase::Fsync);
        let delta = after.delta_since(&before);
        assert_eq!(delta.phase, Phase::Fsync);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_us, 207);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        assert!((delta.mean_us() - 103.5).abs() < 1e-9);
        // Same snapshot twice: empty interval, mean well-defined.
        let zero = after.delta_since(&after);
        assert_eq!(zero.count, 0);
        assert_eq!(zero.mean_us(), 0.0);
    }

    #[test]
    fn phase_deltas_match_by_phase() {
        let e1 = PhaseTotal::empty(Phase::Parse);
        let mut now = vec![PhaseTotal::empty(Phase::Parse), PhaseTotal::empty(Phase::Handle)];
        now[0].count = 5;
        now[0].sum_us = 50;
        now[1].count = 3;
        let mut earlier = vec![e1];
        earlier[0].count = 2;
        earlier[0].sum_us = 30;
        let d = phase_deltas(&now, &earlier);
        assert_eq!(d[0].count, 3);
        assert_eq!(d[0].sum_us, 20);
        // Handle had no earlier entry: passes through.
        assert_eq!(d[1].count, 3);
    }

    #[test]
    fn trace_ids_round_trip_and_hash() {
        let id = gen_id();
        assert_ne!(id, 0);
        assert_ne!(id, gen_id());
        assert_eq!(parse_id(&id_hex(id)), id);
        assert_eq!(parse_id("deadbeef"), 0xdead_beef);
        let h = parse_id("not hex at all");
        assert_ne!(h, 0);
        assert_eq!(h, parse_id("not hex at all"));
    }

    #[test]
    fn concurrent_drain_never_tears() {
        use std::sync::atomic::AtomicBool;
        let ring = Arc::new(SpanRing::new(32));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // extra mirrors start_us so a torn slot is detectable.
                    ring.push(Phase::Write, i, "loop", i, i, i);
                    i += 1;
                }
            })
        };
        for _ in 0..200 {
            for s in ring.drain() {
                assert_eq!(s.extra, s.start_us);
                assert_eq!(s.extra, s.dur_us);
                assert_eq!(s.extra, s.trace_id);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
