//! Property tests for the flight-recorder ring: pushing N spans into a
//! capacity-C ring always yields exactly the last `min(N, C)` spans, in
//! push order, and never panics — for any N/C combination, including
//! wraparound many times over.

use cc_trace::{Phase, SpanRing};
use proptest::prelude::*;

proptest! {
    #[test]
    fn wraparound_keeps_last_c_in_order(cap in 1usize..64, n in 0usize..300) {
        let ring = SpanRing::new(cap);
        for i in 0..n as u64 {
            ring.push(Phase::Handle, i + 1, "prop", i, i, i % 7);
        }
        let got = ring.drain();
        prop_assert_eq!(got.len(), n.min(cap));
        let first = (n - got.len()) as u64;
        for (k, span) in got.iter().enumerate() {
            let i = first + k as u64;
            prop_assert_eq!(span.extra, i);
            prop_assert_eq!(span.start_us, i);
            prop_assert_eq!(span.trace_id, i + 1);
            prop_assert_eq!(span.dur_us, i % 7);
        }
    }

    #[test]
    fn capacity_zero_is_clamped_not_panicking(n in 0usize..50) {
        let ring = SpanRing::new(0);
        prop_assert_eq!(ring.capacity(), 1);
        for i in 0..n as u64 {
            ring.push(Phase::Parse, 1, "", 0, i, 0);
        }
        let got = ring.drain();
        prop_assert_eq!(got.len(), n.min(1));
        if let Some(last) = got.last() {
            prop_assert_eq!(last.start_us, n as u64 - 1);
        }
    }

    #[test]
    fn arbitrary_tags_never_corrupt_slots(tag in "[ -~]{0,40}", n in 1usize..20) {
        let ring = SpanRing::new(8);
        for i in 0..n as u64 {
            ring.push(Phase::Score, 9, &tag, i, i, 1);
        }
        let got = ring.drain();
        prop_assert_eq!(got.len(), n.min(8));
        let want: String = tag.chars().take(cc_trace::TAG_CAP).collect();
        for span in &got {
            prop_assert_eq!(span.tag.as_str(), want.as_str());
        }
    }
}
