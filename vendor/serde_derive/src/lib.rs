//! Offline shim for `serde_derive`.
//!
//! Derives the `Serialize` / `Deserialize` traits of the in-workspace
//! `serde` shim (a `Value`-tree data model, not real serde's visitors).
//! Written against raw `proc_macro` because `syn`/`quote` are unavailable
//! in this offline build environment.
//!
//! Supported shapes — exactly what this workspace declares:
//!
//! * structs with named fields;
//! * enums whose variants are unit, 1-tuple, or struct-like
//!   (externally tagged: `"Variant"` / `{"Variant": …}`).
//!
//! Generics are intentionally unsupported (no workspace type needs them);
//! deriving on a generic type fails with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name only (types are never needed — the generated
/// code lets trait resolution find the field type's impl).
type Fields = Vec<String>;

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant; payload is the arity.
    Tuple(usize),
    Struct(Fields),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]` / `#![...]`) and visibility (`pub`,
/// `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                // The bracketed attribute body.
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses `struct Name { fields }` / `enum Name { variants }` from a
/// derive input token stream.
fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type {name})");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!(
                "serde_derive shim: {name} has no braced body (tuple/unit structs unsupported)"
            ),
        }
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();

    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(&body_tokens, &name)),
        "enum" => Shape::Enum(parse_variants(&body_tokens, &name)),
        other => panic!("serde_derive shim: cannot derive for '{other} {name}'"),
    };
    Parsed { name, shape }
}

/// Parses `name: Type, ...` from a struct (or struct-variant) body.
fn parse_named_fields(tokens: &[TokenTree], ctx: &str) -> Fields {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            panic!("serde_derive shim: expected field name in {ctx}, found {:?}", tokens.get(i));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected ':' after field in {ctx}, found {other:?}")
            }
        }
        // Skip the type: consume until a top-level ','. Only angle brackets
        // nest inside the flat token stream (parens/brackets/braces arrive
        // pre-grouped), so track '<'/'>' depth; '->' never appears in field
        // types this workspace uses (no fn-pointer fields).
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses enum variants: `Name`, `Name(T)`, or `Name { fields }`.
fn parse_variants(tokens: &[TokenTree], ctx: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            panic!("serde_derive shim: expected variant in {ctx}, found {:?}", tokens.get(i));
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                // Count top-level commas to get the arity.
                let mut arity = 1usize;
                let mut depth = 0i32;
                for t in &inner {
                    if let TokenTree::Punct(p) = t {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => arity += 1,
                            _ => {}
                        }
                    }
                }
                if inner.is_empty() {
                    arity = 0;
                }
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = parse_named_fields(&inner, &format!("{ctx}::{name}"));
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "pairs.push((\"{f}\".to_string(), \
                         serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut pairs: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 serde::Value::Object(pairs)"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n")
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|k| format!("x{k}")).collect();
                            let payload = if *arity == 1 {
                                "serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), {payload})]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), \
                                 serde::Value::Object(vec![{}]))]),\n",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let expr = if *arity == 1 {
                                format!(
                                    "return Ok({name}::{vn}(\
                                     serde::Deserialize::from_value(payload)?));"
                                )
                            } else {
                                let gets: Vec<String> = (0..*arity)
                                    .map(|k| {
                                        format!(
                                            "serde::Deserialize::from_value(\
                                             items.get({k}).unwrap_or(&serde::NULL))?"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "if let serde::Value::Array(items) = payload {{\n\
                                         return Ok({name}::{vn}({}));\n\
                                     }} else {{\n\
                                         return Err(serde::DeError::custom(\
                                         \"variant {vn}: expected array payload\"));\n\
                                     }}",
                                    gets.join(", ")
                                )
                            };
                            Some(format!("\"{vn}\" => {{ {expr} }}\n"))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(\
                                         payload.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ return Ok({name}::{vn} {{ {} }}); }}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::String(s) => {{\n\
                         match s.as_str() {{\n{unit_arms}\
                             other => Err(serde::DeError::custom(format!(\
                             \"unknown variant '{{other}}' of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, payload) = &pairs[0];\n\
                         match tag.as_str() {{\n{tagged_arms}\
                             other => return Err(serde::DeError::custom(format!(\
                             \"unknown variant '{{other}}' of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::DeError::custom(format!(\
                     \"expected {name} (string or 1-key object), found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<{name}, serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("serde_derive shim: generated invalid Deserialize impl")
}
