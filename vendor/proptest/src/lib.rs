//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this in-workspace
//! crate provides the proptest API subset the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`Just`], `collection::vec`, a regex-lite string
//! strategy, the `proptest!` macro, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via the
//!   strategy-bound pattern names) but is not minimized;
//! * **deterministic seeds** — case `k` of every test derives its RNG from
//!   `k`, so failures reproduce exactly without a persistence file.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` (deterministic).
    pub fn from_case(case: u64) -> Self {
        let mut rng =
            TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 };
        for _ in 0..4 {
            let _ = rng.next_u64();
        }
        rng
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another case.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Test-runner knobs (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: usize,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Makes a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Regex-lite string strategy: literals, `[a-z0-9]` classes, and `{m}` /
/// `{m,n}` quantifiers on the preceding atom (the subset the workspace's
/// patterns use, e.g. `"g[0-9]{1,2}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        #[derive(Clone)]
        enum Atom {
            Lit(char),
            Class(Vec<(char, char)>),
        }
        let chars: Vec<char> = self.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((chars[i], chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((chars[i], chars[i]));
                            i += 1;
                        }
                    }
                    i += 1; // ']'
                    atoms.push((Atom::Class(ranges), 1, 1));
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|o| i + o)
                        .expect("regex-lite: unterminated quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    let (lo, hi) = match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("regex-lite: bad quantifier"),
                            b.trim().parse().expect("regex-lite: bad quantifier"),
                        ),
                        None => {
                            let k = body.trim().parse().expect("regex-lite: bad quantifier");
                            (k, k)
                        }
                    };
                    let last = atoms.last_mut().expect("regex-lite: quantifier without atom");
                    last.1 = lo;
                    last.2 = hi;
                    i = close + 1;
                }
                c => {
                    atoms.push((Atom::Lit(c), 1, 1));
                    i += 1;
                }
            }
        }
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let reps = *lo as u64 + rng.below((hi - lo + 1) as u64);
            for _ in 0..reps {
                match atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = b as u32 - a as u32 + 1;
                        let c = char::from_u32(a as u32 + rng.below(span as u64) as u32)
                            .expect("regex-lite: invalid char range");
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specifications `vec` accepts.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec size range is empty");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "vec size range is empty");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut accepted = 0usize;
            let mut attempt = 0u64;
            let max_attempts = (cfg.cases as u64) * 20 + 100;
            while accepted < cfg.cases {
                attempt += 1;
                if attempt > max_attempts {
                    panic!(
                        "proptest: too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, cfg.cases
                    );
                }
                let mut __rng = $crate::TestRng::from_case(attempt);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{attempt} of {} failed: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Filters out uninteresting inputs; the case is retried, not failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..5).prop_flat_map(|m| (Just(m), crate::collection::vec(-1.0..1.0f64, m..=m)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hit_bounds(x in 2usize..9, f in -3.0..3.0f64) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-3.0..3.0).contains(&f));
        }

        #[test]
        fn flat_map_links_sizes((m, v) in pair()) {
            prop_assert_eq!(v.len(), m);
        }

        #[test]
        fn regex_lite_shapes(s in "g[0-9]{1,2}") {
            prop_assert!(s.starts_with('g'));
            prop_assert!(s.len() >= 2 && s.len() <= 3);
            prop_assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
        }

        #[test]
        fn assume_rejects(v in 0usize..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }
}
