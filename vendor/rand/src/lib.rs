//! Offline shim for the `rand` crate.
//!
//! The build environment for this repository has no crates.io access, so
//! this in-workspace crate provides exactly the `rand` 0.8 API subset the
//! workspace uses: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is SplitMix64 — not cryptographic, but statistically solid
//! for simulation/sampling workloads and fully deterministic per seed,
//! which is all the data generators and tests require. Seeded streams are
//! stable across platforms and releases of this workspace (tests rely on
//! reproducibility, not on matching upstream `rand` streams).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`] (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges [`Rng::gen_range`] accepts (mirrors `SampleRange<T>`; the `T`
/// parameter lets surrounding code drive integer-literal inference).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection-free widening multiply.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Element types [`Rng::gen_range`] can sample (mirrors `SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Closed/half-open distinction is immaterial for floats.
                Self::sample_below(lo, hi, rng)
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every bit
/// source (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Burn a few outputs so small seeds decorrelate.
            for _ in 0..4 {
                let _ = rng.next_u64();
            }
            rng
        }
    }
}

pub mod seq {
    //! Sequence utilities (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=7u32);
            assert!((1..=7).contains(&y));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
