//! Offline shim for the `serde` crate.
//!
//! The build environment has no crates.io access, so this in-workspace
//! crate provides the subset of serde this workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits and their derive macros
//! (re-exported from the in-workspace `serde_derive` proc-macro crate).
//!
//! Unlike real serde's zero-copy visitor architecture, this shim funnels
//! everything through one self-describing tree type, [`Value`] — ample for
//! the JSON profile persistence this repository needs, and small enough to
//! audit. `serde_json` (also shimmed) renders/parses [`Value`] as JSON.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree (the shim's entire data model).
///
/// Objects preserve insertion order (`Vec` of pairs rather than a map) so
/// serialized profiles are stable and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Null / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Number(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map.
    Object(Vec<(String, Value)>),
}

/// A statically allocated null, for "missing field" lookups.
pub const NULL: Value = Value::Null;

impl Value {
    /// Field lookup on an object; missing fields read as [`Value::Null`]
    /// (so `Option` fields deserialize to `None`).
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(pairs) => {
                Ok(pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL))
            }
            other => Err(DeError::custom(format!(
                "expected object with field '{key}', found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive and container impls.

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (JSON has no inf/nan).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::custom(format!("expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {ARITY}-element array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Lossless `f64` encoding for state-persistence payloads: finite
/// values stay JSON numbers (shortest-round-trip), non-finite values —
/// which plain JSON collapses to `null`, read back as NaN — are encoded
/// as hex bit-pattern strings (`"0x7ff0000000000000"`), so `+∞`, `−∞`,
/// and NaN payload bits all survive a round-trip exactly. Wire-facing
/// reports keep the plain (`null`) encoding; snapshot formats opt into
/// this one via manual impls.
pub mod lossless {
    use super::{DeError, Value};

    /// Encodes one `f64` losslessly.
    pub fn f64_to_value(x: f64) -> Value {
        if x.is_finite() {
            Value::Number(x)
        } else {
            Value::String(format!("0x{:016x}", x.to_bits()))
        }
    }

    /// Decodes an `f64` written by [`f64_to_value`].
    ///
    /// # Errors
    /// Rejects malformed bit-pattern strings and non-numeric values.
    pub fn f64_from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Number(n) => Ok(*n),
            Value::String(s) => {
                let hex = s.strip_prefix("0x").ok_or_else(|| {
                    DeError::custom(format!("expected 0x-prefixed f64 bit pattern, found {s:?}"))
                })?;
                u64::from_str_radix(hex, 16)
                    .map(f64::from_bits)
                    .map_err(|_| DeError::custom(format!("invalid f64 bit pattern {s:?}")))
            }
            other => Err(DeError::custom(format!("expected number, found {}", other.kind()))),
        }
    }

    /// Encodes a slice of `f64`s losslessly.
    pub fn vec_to_value(xs: &[f64]) -> Value {
        Value::Array(xs.iter().copied().map(f64_to_value).collect())
    }

    /// Decodes a vector written by [`vec_to_value`].
    ///
    /// # Errors
    /// Rejects non-arrays and malformed elements.
    pub fn vec_from_value(v: &Value) -> Result<Vec<f64>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(f64_from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
