//! Offline shim for `serde_json`.
//!
//! Renders and parses the in-workspace `serde` shim's [`Value`] tree as
//! JSON. Covers the workspace's API surface: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], [`from_reader`].
//!
//! Numbers serialize through Rust's shortest-round-trip `f64` formatting,
//! so profiles survive write → read bit-exactly. Non-finite floats render
//! as `null` (JSON has no inf/NaN), matching real serde_json.

use serde::{DeError, Deserialize, Serialize};

/// The JSON value tree (the serde shim's `Value`, re-exported under the
/// `serde_json::Value` path that real serde_json gives it — code written
/// against this shim stays source-compatible with the real crates).
pub use serde::Value;

/// Serialization/parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Writing.

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values in the exact-i64 window print without a fraction.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => ("\n", " ".repeat(w * (level + 1)), " ".repeat(w * level), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(colon);
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Compact JSON for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Pretty-printed (2-space indent) JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Writes compact JSON into any `io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

/// Reads all of `reader` and parses it as JSON.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(|e| Error::new(e.to_string()))?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("π ≈ \"3\"\n".into())),
            ("xs".into(), Value::Array(vec![Value::Number(1.5), Value::Number(-3.0)])),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        for json in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-308, 6.02214076e23, -0.0, 12345.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert!(back.is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
